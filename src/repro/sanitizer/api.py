"""Process-wide sanitizer context and the null-monitor fast path.

Instrumented components bind their monitors at construction time::

    from repro.sanitizer import api as san
    ...
    self._san = san.queue_monitor()

While a sanitizer is active (the scenario builder activates one when its
:class:`~repro.core.trials.TrialConfig` enables sanitizing) the proxy
returns a live monitor; otherwise it returns the shared null monitor
whose hook methods are no-ops.  Binding happens once per component, so
the disabled path costs a single no-op method call per checked event —
the same fast-path contract as :mod:`repro.obs.api`.

The packet ledger is exposed as an ``Optional`` instead of a null
object: ledger recording sits on the per-trace-event path, where an
``is not None`` test is cheaper than a no-op method call (mirroring
:func:`repro.obs.api.journey_tracker`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sanitizer.ledger import PacketLedger
    from repro.sanitizer.runtime import Sanitizer


class _NullMonitor:
    """Shared no-op monitor bound while the sanitizer is disabled.

    One class carries every hook any protocol monitor exposes, so a
    single shared instance serves queues, TCP agents, and MACs alike.
    """

    __slots__ = ()

    def on_occupancy(self, queue: Any, occupancy: int) -> None:
        """Queue occupancy after an insert (no-op)."""

    def on_segment_sent(self, agent: Any, seqno: int) -> None:
        """TCP sender emitted a segment (no-op)."""

    def on_ack(self, agent: Any, ackno: int) -> None:
        """TCP sender received an ACK (no-op)."""

    def on_sink(self, sink: Any) -> None:
        """TCP sink processed a data segment (no-op)."""

    def on_slot_tx(self, mac: Any, start: float, duration: float) -> None:
        """TDMA MAC began a slot transmission (no-op)."""

    def on_nav(self, mac: Any, until: float) -> None:
        """802.11 MAC updated its NAV (no-op)."""

    def on_backoff(self, mac: Any, slots: int) -> None:
        """802.11 MAC drew a backoff (no-op)."""


NULL_MONITOR = _NullMonitor()

_sanitizer: Optional["Sanitizer"] = None


def activate(sanitizer: Optional["Sanitizer"]) -> None:
    """Install the active sanitizer for component binding."""
    global _sanitizer
    _sanitizer = sanitizer


def deactivate() -> None:
    """Clear the active context (components bound so far stay bound)."""
    activate(None)


def active_sanitizer() -> Optional["Sanitizer"]:
    """The currently active sanitizer, or None when disabled."""
    return _sanitizer


def is_active() -> bool:
    """True while a sanitizer is installed."""
    return _sanitizer is not None


def packet_ledger() -> Optional["PacketLedger"]:
    """The active conservation ledger, or None when disabled."""
    if _sanitizer is None:
        return None
    return _sanitizer.ledger


def queue_monitor() -> Any:
    """The live queue monitor, or the shared null monitor."""
    if _sanitizer is None or _sanitizer.queue_mon is None:
        return NULL_MONITOR
    return _sanitizer.queue_mon


def tcp_monitor() -> Any:
    """The live TCP monitor, or the shared null monitor."""
    if _sanitizer is None or _sanitizer.tcp_mon is None:
        return NULL_MONITOR
    return _sanitizer.tcp_mon


def tdma_monitor() -> Any:
    """The live TDMA slot monitor, or the shared null monitor."""
    if _sanitizer is None or _sanitizer.tdma_mon is None:
        return NULL_MONITOR
    return _sanitizer.tdma_mon


def dcf_monitor() -> Any:
    """The live 802.11 NAV/backoff monitor, or the shared null monitor."""
    if _sanitizer is None or _sanitizer.dcf_mon is None:
        return NULL_MONITOR
    return _sanitizer.dcf_mon
