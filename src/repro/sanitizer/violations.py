"""Structured invariant-violation records and the per-trial report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class InvariantViolation:
    """One broken invariant, with enough context to act on it.

    Every record carries the scenario name, the simulated time the
    violation was detected at, and — when the invariant concerns a
    packet or kernel handle — the offending uid, so a campaign failure
    record is actionable without rerunning the trial.
    """

    #: Checker identifier, e.g. ``"packet-leak"`` or ``"tcp-ack-regress"``.
    checker: str
    #: Stack layer the invariant belongs to (``kernel``, ``net``,
    #: ``mac``, ``phy``, ``routing``, ``transport``).
    layer: str
    #: Human-readable description of what went wrong.
    message: str
    #: Simulated time the violation was detected at.
    time: float
    #: Scenario (trial config) name; stamped by the runtime on emit.
    scenario: str = ""
    #: Offending packet uid, when the invariant concerns a packet.
    uid: Optional[int] = None
    #: Node address involved, when known.
    node: Optional[int] = None
    #: Journey excerpt for the offending uid (obs cross-validation).
    journey: Optional[dict[str, Any]] = None

    def __str__(self) -> str:
        parts = [f"[{self.checker}/{self.layer}]"]
        if self.scenario:
            parts.append(f"scenario={self.scenario}")
        parts.append(f"t={self.time:.6f}")
        if self.uid is not None:
            parts.append(f"uid={self.uid}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        parts.append(self.message)
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "checker": self.checker,
            "layer": self.layer,
            "message": self.message,
            "time": self.time,
            "scenario": self.scenario,
        }
        if self.uid is not None:
            out["uid"] = self.uid
        if self.node is not None:
            out["node"] = self.node
        if self.journey is not None:
            out["journey"] = self.journey
        return out


@dataclass
class SanitizerReport:
    """Everything the sanitizer concluded about one trial."""

    scenario: str = ""
    violations: list[InvariantViolation] = field(default_factory=list)
    #: Violations discarded past the ``max_violations`` cap.
    overflow: int = 0
    #: Checker bookkeeping (packets audited, notes recorded, ...).
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and self.overflow == 0

    def __len__(self) -> int:
        return len(self.violations)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "overflow": self.overflow,
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"sanitizer report — scenario={self.scenario or '?'} "
            f"violations={len(self.violations)}"
            + (f" (+{self.overflow} beyond cap)" if self.overflow else "")
        ]
        for violation in self.violations:
            lines.append(f"  {violation}")
        if self.counters:
            audited = ", ".join(
                f"{key}={value}" for key, value in sorted(self.counters.items())
            )
            lines.append(f"  audited: {audited}")
        if self.ok:
            lines.append("  OK — no invariant violations")
        return "\n".join(lines)
