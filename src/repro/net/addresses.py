"""Node addressing.

Addresses are small integers (the node index), mirroring ns-2's flat
address space.  A single distinguished value stands for the link-layer and
network-layer broadcast address.
"""

from __future__ import annotations

#: Type alias for node addresses.
Address = int

#: The broadcast address (matches ns-2's IP_BROADCAST semantics).
BROADCAST: Address = -1


def is_broadcast(address: Address) -> bool:
    """True if ``address`` is the broadcast address."""
    return address == BROADCAST


def validate_address(address: Address) -> Address:
    """Validate a unicast or broadcast address, returning it unchanged."""
    if not isinstance(address, int):
        raise TypeError(f"address must be an int, got {type(address).__name__}")
    if address < BROADCAST:
        raise ValueError(f"invalid address {address}")
    return address
