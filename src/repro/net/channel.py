"""The shared wireless channel.

A single broadcast medium: every transmission is offered to every other
attached radio, with per-receiver received power computed from the
propagation model and node geometry at transmission time, and delivery
delayed by distance/c.  Receivers below their carrier-sense threshold never
hear the signal at all (ns-2's "interference distance" filter).
"""

from __future__ import annotations

import random
from math import hypot
from typing import TYPE_CHECKING, Optional

from repro.des.events import DeferredBatch
from repro.net.packet import Packet
from repro.obs import api as obs
from repro.perf.fastpath import FASTPATH
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel, TwoRayGround
from repro.phy.radio import WirelessPhy
from repro.sanitizer import api as san

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class WirelessChannel:
    """Broadcast radio channel connecting :class:`WirelessPhy` instances."""

    def __init__(
        self,
        env: "Environment",
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.env = env
        self.propagation = propagation or TwoRayGround()
        self._phys: list[WirelessPhy] = []
        #: Directed pairs that cannot hear each other (fault injection);
        #: both directions are stored so membership tests stay O(1).  The
        #: value is an outage refcount: two overlapping outages on the
        #: same link must not resurrect it when the first one ends.
        self._blocked: dict[tuple[WirelessPhy, WirelessPhy], int] = {}
        self._ledger = san.packet_ledger()
        #: Channel-wide frame-loss probability in [0, 1) while degraded.
        self.loss_rate = 0.0
        self._loss_rng: Optional[random.Random] = None
        #: Statistics: total transmissions offered to the channel.
        self.transmissions = 0
        #: Frames lost to an active channel-degradation window.
        self.degraded_losses = 0
        self._obs_tx = obs.counter("channel.transmissions")
        self._obs_degraded = obs.counter("channel.degraded_losses")
        #: Fast path: per sender, a per-receiver map of the last
        #: ``(sender_pos, receiver_pos, tx_power, distance, rx_power)``.
        #: Platoon geometry is static or slowly moving, so consecutive
        #: transmissions usually see identical positions; a position or
        #: tx-power change misses the cache and recomputes, so mobility
        #: updates invalidate entries implicitly.  Only used when the
        #: propagation model is deterministic (a stochastic model draws
        #: from its RNG per call and must never be cached).  Nested dicts
        #: rather than (sender, receiver) tuple keys: the sender map is
        #: fetched once per transmission, avoiding a tuple allocation per
        #: receiver in the fan-out loop.
        self._link_cache: dict[
            WirelessPhy,
            dict[
                WirelessPhy,
                tuple[
                    tuple[float, float], tuple[float, float], float, float, float
                ],
            ],
        ] = {}

    def attach(self, phy: WirelessPhy) -> None:
        """Connect a radio to this channel."""
        if phy in self._phys:
            raise ValueError("phy already attached")
        phy.channel = self
        phy.propagation = self.propagation
        self._phys.append(phy)

    def detach(self, phy: WirelessPhy) -> None:
        """Disconnect a radio (e.g. a vehicle leaving the scenario)."""
        self._phys.remove(phy)
        phy.channel = None
        self._link_cache.pop(phy, None)
        for receivers in self._link_cache.values():
            receivers.pop(phy, None)

    @property
    def phys(self) -> tuple[WirelessPhy, ...]:
        """Radios currently attached."""
        return tuple(self._phys)

    # -- fault hooks -------------------------------------------------------

    def block_link(self, a: WirelessPhy, b: WirelessPhy) -> None:
        """Make ``a`` and ``b`` mutually inaudible (link outage)."""
        for pair in ((a, b), (b, a)):
            self._blocked[pair] = self._blocked.get(pair, 0) + 1

    def unblock_link(self, a: WirelessPhy, b: WirelessPhy) -> None:
        """Restore a link previously taken down by :meth:`block_link`.

        Refcounted: with overlapping outages on the same link, only the
        last :meth:`unblock_link` actually restores it.
        """
        for pair in ((a, b), (b, a)):
            count = self._blocked.get(pair, 0) - 1
            if count > 0:
                self._blocked[pair] = count
            else:
                self._blocked.pop(pair, None)

    def set_degradation(self, loss_rate: float, rng: random.Random) -> None:
        """Drop frames channel-wide with probability ``loss_rate``."""
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._loss_rng = rng

    def clear_degradation(self) -> None:
        """End the channel-degradation window."""
        self.loss_rate = 0.0
        self._loss_rng = None

    def transmit(self, sender: WirelessPhy, pkt: Packet, duration: float) -> None:
        """Offer ``pkt`` from ``sender`` to every other attached radio."""
        if not sender.up:
            return
        self.transmissions += 1
        self._obs_tx.inc()
        if FASTPATH:
            self._transmit_fast(sender, pkt, duration)
            return
        params = sender.params
        blocked = self._blocked
        ledger = self._ledger
        for receiver in self._phys:
            if receiver is sender:
                continue
            if blocked and (sender, receiver) in blocked:
                if ledger is not None:
                    ledger.note(pkt, "link-blocked", self.env.now)
                continue
            distance = sender.distance_to(receiver)
            power = self.propagation.rx_power(
                sender.tx_power,
                distance,
                params.wavelength,
                tx_gain=params.tx_gain,
                rx_gain=receiver.params.rx_gain,
                tx_height=params.antenna_height,
                rx_height=receiver.params.antenna_height,
                system_loss=params.system_loss,
            )
            if power < receiver.params.cs_threshold:
                if ledger is not None:
                    ledger.note(pkt, "out-of-range", self.env.now)
                continue
            if (
                self._loss_rng is not None
                and self._loss_rng.random() < self.loss_rate
            ):
                self.degraded_losses += 1
                self._obs_degraded.inc()
                if ledger is not None:
                    ledger.note(pkt, "degraded", self.env.now)
                continue
            delay = distance / SPEED_OF_LIGHT
            self.env.process(
                self._deliver(
                    receiver,
                    pkt.copy(keep_uid=True),
                    power,
                    duration,
                    delay,
                    distance,
                )
            )

    def _transmit_fast(
        self, sender: WirelessPhy, pkt: Packet, duration: float
    ) -> None:
        """Fast-path fan-out: cached link budgets, trampoline delivery.

        Observably identical to the reference loop in :meth:`transmit`:
        the same receivers get the same power at the same simulated time,
        in the same event order (see
        :class:`~repro.des.events.DeferredCall`).
        """
        env = self.env
        params = sender.params
        blocked = self._blocked
        propagation = self.propagation
        cacheable = getattr(propagation, "deterministic", False)
        links: dict[WirelessPhy, tuple] = {}
        if cacheable:
            sender_links = self._link_cache.get(sender)
            if sender_links is None:
                sender_links = self._link_cache[sender] = {}
            links = sender_links
        tx_power = sender.tx_power
        sender_pos = sender.position
        loss_rng = self._loss_rng
        ledger = self._ledger
        deliveries: list[tuple] = []
        for receiver in self._phys:
            if receiver is sender:
                continue
            if blocked and (sender, receiver) in blocked:
                if ledger is not None:
                    ledger.note(pkt, "link-blocked", env.now)
                continue
            receiver_pos = receiver.position
            entry = links.get(receiver)
            if (
                entry is not None
                and entry[0] == sender_pos
                and entry[1] == receiver_pos
                and entry[2] == tx_power
            ):
                distance = entry[3]
                power = entry[4]
            else:
                # hypot, not sqrt(dx²+dy²): the reference path uses
                # Phy.distance_to (math.hypot) and the two can differ in
                # the last ulp, which the equivalence gate would catch.
                distance = hypot(
                    receiver_pos[0] - sender_pos[0],
                    receiver_pos[1] - sender_pos[1],
                )
                power = propagation.rx_power(
                    tx_power,
                    distance,
                    params.wavelength,
                    tx_gain=params.tx_gain,
                    rx_gain=receiver.params.rx_gain,
                    tx_height=params.antenna_height,
                    rx_height=receiver.params.antenna_height,
                    system_loss=params.system_loss,
                )
                if cacheable:
                    links[receiver] = (
                        sender_pos,
                        receiver_pos,
                        tx_power,
                        distance,
                        power,
                    )
            if power < receiver.params.cs_threshold:
                if ledger is not None:
                    ledger.note(pkt, "out-of-range", env.now)
                continue
            if loss_rng is not None and loss_rng.random() < self.loss_rate:
                self.degraded_losses += 1
                self._obs_degraded.inc()
                if ledger is not None:
                    ledger.note(pkt, "degraded", env.now)
                continue
            deliveries.append(
                (
                    distance / SPEED_OF_LIGHT,
                    _Delivery(receiver, pkt.copy(keep_uid=True), power,
                              duration, distance),
                )
            )
        if deliveries:
            DeferredBatch(env, deliveries)

    def _deliver(
        self,
        receiver: WirelessPhy,
        pkt: Packet,
        power: float,
        duration: float,
        delay: float,
        distance: float,
    ):
        yield self.env.timeout(delay)
        receiver.begin_receive(pkt, power, duration, distance=distance)


class _Delivery:
    """Delivery event callback (cheaper than a closure per frame)."""

    __slots__ = ("receiver", "pkt", "power", "duration", "distance")

    def __init__(
        self,
        receiver: WirelessPhy,
        pkt: Packet,
        power: float,
        duration: float,
        distance: float,
    ) -> None:
        self.receiver = receiver
        self.pkt = pkt
        self.power = power
        self.duration = duration
        self.distance = distance

    def __call__(self, _event: object = None) -> None:
        self.receiver.begin_receive(
            self.pkt, self.power, self.duration, distance=self.distance
        )
