"""The shared wireless channel.

A single broadcast medium: every transmission is offered to every other
attached radio, with per-receiver received power computed from the
propagation model and node geometry at transmission time, and delivery
delayed by distance/c.  Receivers below their carrier-sense threshold never
hear the signal at all (ns-2's "interference distance" filter).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel, TwoRayGround
from repro.phy.radio import WirelessPhy

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class WirelessChannel:
    """Broadcast radio channel connecting :class:`WirelessPhy` instances."""

    def __init__(
        self,
        env: "Environment",
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.env = env
        self.propagation = propagation or TwoRayGround()
        self._phys: list[WirelessPhy] = []
        #: Directed pairs that cannot hear each other (fault injection);
        #: both directions are stored so membership tests stay O(1).
        self._blocked: set[tuple[WirelessPhy, WirelessPhy]] = set()
        #: Channel-wide frame-loss probability in [0, 1) while degraded.
        self.loss_rate = 0.0
        self._loss_rng: Optional[random.Random] = None
        #: Statistics: total transmissions offered to the channel.
        self.transmissions = 0
        #: Frames lost to an active channel-degradation window.
        self.degraded_losses = 0

    def attach(self, phy: WirelessPhy) -> None:
        """Connect a radio to this channel."""
        if phy in self._phys:
            raise ValueError("phy already attached")
        phy.channel = self
        phy.propagation = self.propagation
        self._phys.append(phy)

    def detach(self, phy: WirelessPhy) -> None:
        """Disconnect a radio (e.g. a vehicle leaving the scenario)."""
        self._phys.remove(phy)
        phy.channel = None

    @property
    def phys(self) -> tuple[WirelessPhy, ...]:
        """Radios currently attached."""
        return tuple(self._phys)

    # -- fault hooks -------------------------------------------------------

    def block_link(self, a: WirelessPhy, b: WirelessPhy) -> None:
        """Make ``a`` and ``b`` mutually inaudible (link outage)."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def unblock_link(self, a: WirelessPhy, b: WirelessPhy) -> None:
        """Restore a link previously taken down by :meth:`block_link`."""
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def set_degradation(self, loss_rate: float, rng: random.Random) -> None:
        """Drop frames channel-wide with probability ``loss_rate``."""
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._loss_rng = rng

    def clear_degradation(self) -> None:
        """End the channel-degradation window."""
        self.loss_rate = 0.0
        self._loss_rng = None

    def transmit(self, sender: WirelessPhy, pkt: Packet, duration: float) -> None:
        """Offer ``pkt`` from ``sender`` to every other attached radio."""
        if not sender.up:
            return
        self.transmissions += 1
        params = sender.params
        blocked = self._blocked
        for receiver in self._phys:
            if receiver is sender:
                continue
            if blocked and (sender, receiver) in blocked:
                continue
            distance = sender.distance_to(receiver)
            power = self.propagation.rx_power(
                sender.tx_power,
                distance,
                params.wavelength,
                tx_gain=params.tx_gain,
                rx_gain=receiver.params.rx_gain,
                tx_height=params.antenna_height,
                rx_height=receiver.params.antenna_height,
                system_loss=params.system_loss,
            )
            if power < receiver.params.cs_threshold:
                continue
            if (
                self._loss_rng is not None
                and self._loss_rng.random() < self.loss_rate
            ):
                self.degraded_losses += 1
                continue
            delay = distance / SPEED_OF_LIGHT
            self.env.process(
                self._deliver(
                    receiver,
                    pkt.copy(keep_uid=True),
                    power,
                    duration,
                    delay,
                    distance,
                )
            )

    def _deliver(
        self,
        receiver: WirelessPhy,
        pkt: Packet,
        power: float,
        duration: float,
        delay: float,
        distance: float,
    ):
        yield self.env.timeout(delay)
        receiver.begin_receive(pkt, power, duration, distance=distance)
