"""The shared wireless channel.

A single broadcast medium: every transmission is offered to every other
attached radio, with per-receiver received power computed from the
propagation model and node geometry at transmission time, and delivery
delayed by distance/c.  Receivers below their carrier-sense threshold never
hear the signal at all (ns-2's "interference distance" filter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel, TwoRayGround
from repro.phy.radio import WirelessPhy

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class WirelessChannel:
    """Broadcast radio channel connecting :class:`WirelessPhy` instances."""

    def __init__(
        self,
        env: "Environment",
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.env = env
        self.propagation = propagation or TwoRayGround()
        self._phys: list[WirelessPhy] = []
        #: Statistics: total transmissions offered to the channel.
        self.transmissions = 0

    def attach(self, phy: WirelessPhy) -> None:
        """Connect a radio to this channel."""
        if phy in self._phys:
            raise ValueError("phy already attached")
        phy.channel = self
        phy.propagation = self.propagation
        self._phys.append(phy)

    def detach(self, phy: WirelessPhy) -> None:
        """Disconnect a radio (e.g. a vehicle leaving the scenario)."""
        self._phys.remove(phy)
        phy.channel = None

    @property
    def phys(self) -> tuple[WirelessPhy, ...]:
        """Radios currently attached."""
        return tuple(self._phys)

    def transmit(self, sender: WirelessPhy, pkt: Packet, duration: float) -> None:
        """Offer ``pkt`` from ``sender`` to every other attached radio."""
        self.transmissions += 1
        params = sender.params
        for receiver in self._phys:
            if receiver is sender:
                continue
            distance = sender.distance_to(receiver)
            power = self.propagation.rx_power(
                params.tx_power,
                distance,
                params.wavelength,
                tx_gain=params.tx_gain,
                rx_gain=receiver.params.rx_gain,
                tx_height=params.antenna_height,
                rx_height=receiver.params.antenna_height,
                system_loss=params.system_loss,
            )
            if power < receiver.params.cs_threshold:
                continue
            delay = distance / SPEED_OF_LIGHT
            self.env.process(
                self._deliver(
                    receiver,
                    pkt.copy(keep_uid=True),
                    power,
                    duration,
                    delay,
                    distance,
                )
            )

    def _deliver(
        self,
        receiver: WirelessPhy,
        pkt: Packet,
        power: float,
        duration: float,
        delay: float,
        distance: float,
    ):
        yield self.env.timeout(delay)
        receiver.begin_receive(pkt, power, duration, distance=distance)
