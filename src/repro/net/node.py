"""Mobile node: the assembled protocol stack.

A node owns one radio, one MAC with its interface queue, a routing
protocol, and any number of transport agents demultiplexed by port —
the Python equivalent of ns-2's mobile-node composite object.

Data path::

    agent.send ─▶ node.send ─▶ routing.route_packet ─▶ node.enqueue_to_mac
        ─▶ ifq ─▶ mac ─▶ phy ─▶ channel ─▶ peer phy ─▶ peer mac
        ─▶ node._recv_from_mac ─▶ routing.handle_packet
        ─▶ node.deliver_up ─▶ agent.receive
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addresses import Address
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.mac.base import Mac
from repro.mobility.base import MobilityModel
from repro.obs import api as obs
from repro.phy.radio import RadioParams, WirelessPhy
from repro.sanitizer import api as san

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment
    from repro.net.channel import WirelessChannel


class Node:
    """One simulated vehicle/host with a full wireless stack."""

    def __init__(
        self,
        env: "Environment",
        address: Address,
        mobility: MobilityModel,
        channel: "WirelessChannel",
        mac_factory: Callable[["Environment", Address, WirelessPhy, DropTailQueue], Mac],
        queue_factory: Optional[
            Callable[["Environment"], DropTailQueue]
        ] = None,
        radio_params: Optional[RadioParams] = None,
        tracer: Optional[object] = None,
        use_arp: bool = False,
    ) -> None:
        if address < 0:
            raise ValueError("node address must be non-negative")
        self.env = env
        self.address = address
        self.mobility = mobility
        self.tracer = tracer
        self.journeys = obs.journey_tracker()
        self.spans = obs.span_tracer()
        self._ledger = san.packet_ledger()
        self.phy = WirelessPhy(
            env,
            position_fn=lambda: mobility.position(env.now),
            params=radio_params,
        )
        channel.attach(self.phy)
        if queue_factory is None:
            self.ifq = DropTailQueue(env, drop_callback=self._queue_drop)
        else:
            self.ifq = queue_factory(env)
            self.ifq.drop_callback = self._queue_drop
        self.mac = mac_factory(env, address, self.phy, self.ifq)
        self.mac.recv_callback = self._recv_from_mac
        self.mac.link_failure_callback = self._link_failed
        self.mac.link_success_callback = self._link_ok
        self.mac.trace_callback = self._trace_mac
        if use_arp:
            from repro.net.arp import ArpLayer

            self.arp = ArpLayer(self)
        else:
            self.arp = None
        self.routing = None
        self.agents: dict[int, object] = {}
        #: Statistics.
        self.packets_originated = 0
        self.packets_delivered = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0

    def __repr__(self) -> str:
        return f"<Node {self.address} at {self.position}>"

    # -- assembly ----------------------------------------------------------------

    def set_routing(self, routing: object) -> None:
        """Install the routing protocol (must happen before :meth:`start`)."""
        self.routing = routing

    def add_agent(self, port: int, agent: object) -> None:
        """Bind a transport agent to a local port."""
        if port in self.agents:
            raise ValueError(f"port {port} already bound on node {self.address}")
        self.agents[port] = agent

    def start(self) -> None:
        """Start the MAC service loop and the routing protocol."""
        if self.routing is None:
            raise RuntimeError(f"node {self.address} has no routing protocol")
        self.mac.start()
        self.routing.start()

    # -- geometry --------------------------------------------------------------------

    @property
    def position(self) -> tuple[float, float]:
        """Current position, metres."""
        return self.mobility.position(self.env.now)

    # -- downward path --------------------------------------------------------------------

    def send(self, pkt: Packet) -> None:
        """Entry point for locally originated packets (from agents)."""
        self.packets_originated += 1
        self._trace("s", pkt, "AGT")
        self.routing.route_packet(pkt)

    def enqueue_to_mac(self, pkt: Packet, next_hop: Address) -> None:
        """Hand a packet to the interface queue bound for ``next_hop``."""
        self._trace("s", pkt, "RTR")
        if self.arp is not None:
            self.arp.resolve_and_send(pkt, next_hop)
            return
        pkt.mac.dst = next_hop
        pkt.mac.src = self.address
        self.ifq.put(pkt)

    # -- upward path -------------------------------------------------------------------------

    def _recv_from_mac(self, pkt: Packet) -> None:
        if self.arp is not None and self.arp.handle(pkt):
            return
        if self.routing is not None:
            self.routing.handle_packet(pkt)

    def deliver_up(self, pkt: Packet) -> None:
        """Deliver a packet addressed to this node to its agent."""
        self.packets_delivered += 1
        self._trace("r", pkt, "AGT")
        agent = self.agents.get(pkt.ip.dport)
        if agent is not None:
            agent.receive(pkt)

    def drop(self, pkt: Packet, reason: str) -> None:
        """Record a routing-layer packet drop."""
        self.packets_dropped += 1
        self._trace("D", pkt, reason)

    def count_forward(self, pkt: Packet) -> None:
        """Record that a packet was forwarded on behalf of another node."""
        self.packets_forwarded += 1
        self._trace("f", pkt, "RTR")

    # -- link feedback -------------------------------------------------------------------------

    def _link_failed(self, pkt: Packet) -> None:
        if self.routing is not None:
            self.routing.link_failed(pkt)

    def _link_ok(self, pkt: Packet) -> None:
        if self.routing is not None:
            self.routing.link_ok(pkt)

    # -- tracing -----------------------------------------------------------------------------------

    def _queue_drop(self, pkt: Packet, reason: str) -> None:
        self.packets_dropped += 1
        self._trace("D", pkt, reason)

    def _trace_mac(self, event: str, pkt: Packet, layer: str) -> None:
        self._trace(event, pkt, layer)

    def _trace(self, event: str, pkt: Packet, layer: str) -> None:
        if self.tracer is not None:
            self.tracer.record(event, self.env.now, self.address, layer, pkt)
        if self.journeys is not None:
            self.journeys.record(event, self.env.now, self.address, layer, pkt)
        if self.spans is not None:
            self.spans.record_packet(event, layer, self.address, pkt)
        if self._ledger is not None:
            self._ledger.record(event, self.env.now, self.address, layer, pkt)
