"""Protocol header structures carried inside :class:`~repro.net.packet.Packet`.

Each header is a small mutable dataclass stored on the packet under a
well-known key (``pkt.headers["tcp"]`` etc.), mirroring ns-2's packet header
stack.  Header *wire sizes* (bytes added to the packet's byte count) are
declared as class attributes so transport/MAC layers can account for
overhead consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import Address, BROADCAST
from repro.perf.fastpath import FASTPATH

#: Headers are copied once per receiver per hop, so their memory layout is
#: hot; slotted dataclasses drop the per-instance dict (reference mode keeps
#: the plain layout).
_slotted = dataclass(slots=True) if FASTPATH else dataclass


@_slotted
class IpHeader:
    """Network-layer header (20 bytes on the wire)."""

    WIRE_SIZE = 20

    src: Address
    dst: Address
    ttl: int = 32
    sport: int = 0
    dport: int = 0


@_slotted
class MacHeader:
    """Link-layer header filled in by the routing layer / MAC.

    ``src``/``dst`` are link-level addresses (same integer space as IP
    addresses here; the optional :mod:`repro.net.arp` layer resolves them
    with an explicit request/reply when enabled).
    """

    WIRE_SIZE = 28  # 802.11 data MAC header + FCS

    src: Address = BROADCAST
    dst: Address = BROADCAST
    #: NAV duration in seconds announced by this frame (802.11 virtual CS).
    duration: float = 0.0
    #: Frame subtype: "data", "ack", "rts", "cts", or "tdma-data".
    subtype: str = "data"
    #: Retry counter stamped by the MAC for tracing.
    retries: int = 0


@_slotted
class TcpHeader:
    """Simplified one-way TCP header (ns-2 Agent/TCP style).

    Sequence numbers count *segments*, not bytes, exactly as ns-2 does;
    the byte count is reconstructed as ``seqno * segment_size``.
    """

    WIRE_SIZE = 20

    seqno: int = 0
    ackno: int = -1
    is_ack: bool = False
    #: Timestamp echoed by the sink for RTT sampling.
    ts_echo: float = 0.0
    #: Number of bytes of application payload in this segment.
    payload: int = 0


@_slotted
class UdpHeader:
    """UDP header (8 bytes on the wire)."""

    WIRE_SIZE = 8

    seqno: int = 0
    payload: int = 0


@_slotted
class AodvHeader:
    """AODV control header (RFC 3561 field subset).

    A single structure covers RREQ/RREP/RERR/HELLO; ``kind`` selects which
    fields are meaningful.  Wire sizes follow the RFC message formats.
    """

    KIND_RREQ = "rreq"
    KIND_RREP = "rrep"
    KIND_RERR = "rerr"
    KIND_HELLO = "hello"

    WIRE_SIZES = {"rreq": 24, "rrep": 20, "rerr": 12, "hello": 20}

    kind: str = KIND_RREQ
    hop_count: int = 0
    #: RREQ id, unique per originator (duplicate suppression).
    rreq_id: int = 0
    dst: Address = BROADCAST
    dst_seqno: int = 0
    #: True if the originator has no valid dst seqno ("unknown seqno" flag).
    unknown_seqno: bool = False
    origin: Address = BROADCAST
    origin_seqno: int = 0
    #: For RERR: list of (unreachable destination, its last known seqno).
    unreachable: list[tuple[Address, int]] = field(default_factory=list)
    #: Route lifetime advertised in RREP/HELLO (seconds).
    lifetime: float = 0.0

    @property
    def wire_size(self) -> int:
        """Size in bytes of this control message on the wire."""
        base = self.WIRE_SIZES[self.kind]
        if self.kind == self.KIND_RERR:
            return base + 8 * max(0, len(self.unreachable) - 1)
        return base


@_slotted
class EblHeader:
    """Extended-Brake-Lights application payload descriptor.

    Carried by EBL warning packets so traces can distinguish the initial
    brake notification from the subsequent stream.
    """

    WIRE_SIZE = 8

    #: Identifier of the braking (sending) vehicle.
    vehicle: int = 0
    #: Monotonic warning sequence number within one braking episode.
    warning_seq: int = 0
    #: True for the first packet of a braking episode (used by the safety
    #: analysis in §III.E of the paper).
    initial: bool = False
    #: Deceleration being applied by the sender, m/s² (informational).
    deceleration: float = 0.0
    #: True when this packet acknowledges a received initial warning
    #: (sent unicast back to the warning's originator).
    ack: bool = False


@_slotted
class DsdvHeader:
    """DSDV full/incremental dump header (baseline protocol)."""

    WIRE_SIZE = 12

    #: List of (destination, metric, seqno) triples advertised.
    entries: list[tuple[Address, int, int]] = field(default_factory=list)

    @property
    def wire_size(self) -> int:
        """Size in bytes: fixed part plus 12 bytes per advertised route."""
        return self.WIRE_SIZE + 12 * len(self.entries)
