"""Address Resolution Protocol (ns-2 ``LL``/``ARPTable`` equivalent).

Our addresses are a flat integer space, so resolution is an *identity*
mapping — but ns-2 still ran ARP over it, and ARP visibly shapes
results: the **first** packet to a neighbour waits a full
request/reply exchange, inflating exactly the initial-packet delay the
paper's safety analysis measures.  The layer is therefore optional
(``TrialConfig.use_arp``), off by default to match the calibrated
results, and available to quantify its effect.

Behaviour follows ns-2: one packet is held per unresolved destination
(a newer packet replaces — drops — the held one), requests are
broadcast, replies unicast, and entries never expire within a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.addresses import Address, BROADCAST
from repro.net.headers import IpHeader, MacHeader
from repro.net.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

#: ARP packet size on the wire (Ethernet-style), bytes.
ARP_PACKET_SIZE = 28


@dataclass
class ArpHeader:
    """ARP request/reply payload."""

    WIRE_SIZE = ARP_PACKET_SIZE

    op: str  # "request" or "reply"
    sender: Address
    target: Address


class ArpLayer:
    """Link-layer shim resolving next hops before MAC transmission.

    Sits between the routing layer and the interface queue: packets for
    resolved (or broadcast) next hops pass straight through; the first
    packet to an unresolved neighbour is parked while a request goes
    out.
    """

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.env = node.env
        #: Resolved neighbours.  Identity-mapped, but only after the
        #: handshake — exactly ns-2's observable behaviour.
        self.cache: set[Address] = set()
        #: One held packet per pending destination (ns-2 keeps one).
        self._pending: dict[Address, Packet] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.packets_dropped = 0

    # -- downward path ---------------------------------------------------------

    def resolve_and_send(self, pkt: Packet, next_hop: Address) -> None:
        """Forward ``pkt`` once ``next_hop`` is resolved."""
        if next_hop == BROADCAST or next_hop in self.cache:
            self._transmit(pkt, next_hop)
            return
        if next_hop in self._pending:
            # ns-2 keeps only the most recent packet per destination.
            dropped = self._pending[next_hop]
            self.packets_dropped += 1
            self.node.drop(dropped, "ARP")
        self._pending[next_hop] = pkt
        self._send_request(next_hop)

    def _transmit(self, pkt: Packet, next_hop: Address) -> None:
        pkt.mac.dst = next_hop
        pkt.mac.src = self.node.address
        self.node.ifq.put(pkt)

    def _send_request(self, target: Address) -> None:
        self.requests_sent += 1
        request = Packet(
            ptype=PacketType.MAC,
            size=ARP_PACKET_SIZE,
            ip=IpHeader(src=self.node.address, dst=BROADCAST),
            mac=MacHeader(src=self.node.address, dst=BROADCAST),
            headers={
                "arp": ArpHeader(
                    op="request", sender=self.node.address, target=target
                )
            },
        )
        self.node.ifq.put(request)

    # -- upward path ----------------------------------------------------------------

    def handle(self, pkt: Packet) -> bool:
        """Process a frame if it is ARP; returns True when consumed."""
        header = pkt.headers.get("arp")
        if header is None:
            return False
        # Any ARP traffic teaches us the sender.
        self.cache.add(header.sender)
        self._release(header.sender)
        if header.op == "request" and header.target == self.node.address:
            self._send_reply(header.sender)
        return True

    def _send_reply(self, requester: Address) -> None:
        self.replies_sent += 1
        reply = Packet(
            ptype=PacketType.MAC,
            size=ARP_PACKET_SIZE,
            ip=IpHeader(src=self.node.address, dst=requester),
            mac=MacHeader(src=self.node.address, dst=requester),
            headers={
                "arp": ArpHeader(
                    op="reply", sender=self.node.address, target=requester
                )
            },
        )
        self.node.ifq.put(reply)

    def _release(self, resolved: Address) -> None:
        held = self._pending.pop(resolved, None)
        if held is not None:
            self._transmit(held, resolved)
