"""Interface queues between the routing layer and the MAC.

These replicate ns-2's ``Queue/DropTail``, ``Queue/DropTail/PriQueue`` (the
paper's fixed parameter — routing-protocol packets jump the queue), and a
RED queue as an extension.  Unlike :class:`repro.des.Store`, a full queue
never blocks the producer: the packet is *dropped*, and a drop callback is
invoked so the trace layer can record it, exactly as ns-2 does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import random

from repro.des.events import Event
from repro.net.packet import Packet
from repro.obs import api as obs
from repro.obs.registry import OCCUPANCY_EDGES
from repro.sanitizer import api as san

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment

#: Signature of a drop callback: (packet, reason).
DropCallback = Callable[[Packet, str], None]

#: ns-2's default interface queue length, in packets.
DEFAULT_QUEUE_LIMIT = 50


class DropTailQueue:
    """FIFO interface queue that drops arrivals when full (drop-tail).

    The MAC layer consumes packets with :meth:`get`, which returns an event
    that fires with the next packet (immediately if one is waiting).
    """

    def __init__(
        self,
        env: "Environment",
        limit: int = DEFAULT_QUEUE_LIMIT,
        drop_callback: Optional[DropCallback] = None,
    ) -> None:
        if limit <= 0:
            raise ValueError("queue limit must be positive")
        self.env = env
        self.limit = limit
        self.drop_callback = drop_callback
        self._items: list[Packet] = []
        self._getters: list[Event] = []
        #: Counters for analysis.
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self._obs_enq = obs.counter("queue.enqueued")
        self._obs_drop = obs.counter("queue.dropped")
        self._obs_occ = obs.histogram("queue.occupancy", OCCUPANCY_EDGES)
        self._san = san.queue_monitor()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_length(self) -> int:
        """Total bytes currently queued."""
        return sum(pkt.size for pkt in self._items)

    def put(self, pkt: Packet) -> bool:
        """Enqueue ``pkt``; returns False (and drops) if the queue is full."""
        # Occupancy is observed at arrival, before the packet is placed:
        # the queue depth the arrival actually experienced.
        self._obs_occ.observe(len(self._items))
        if self._getters:
            # A consumer is already waiting: hand over directly.
            self._getters.pop(0).succeed(pkt)
            self.enqueued += 1
            self.dequeued += 1
            self._obs_enq.inc()
            return True
        if len(self._items) >= self.limit:
            self._drop(pkt, "IFQ")
            return False
        self._insert(pkt)
        self.enqueued += 1
        self._obs_enq.inc()
        self._san.on_occupancy(self, len(self._items))
        return True

    def get(self) -> Event:
        """Event firing with the next packet (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.pop(0))
            self.dequeued += 1
        else:
            self._getters.append(event)
        return event

    def requeue(self, pkt: Packet) -> bool:
        """Put ``pkt`` back at the *head* (MAC gave up mid-service)."""
        if self._getters:
            self._getters.pop(0).succeed(pkt)
            self.dequeued += 1
            return True
        if len(self._items) >= self.limit:
            self._drop(pkt, "IFQ")
            return False
        self._items.insert(0, pkt)
        self._san.on_occupancy(self, len(self._items))
        return True

    def flush(self, reason: str = "IFQ") -> list[Packet]:
        """Drop everything queued (node crash); returns the dropped packets."""
        dropped, self._items = self._items, []
        for pkt in dropped:
            self._drop(pkt, reason)
        return dropped

    def remove_matching(self, predicate: Callable[[Packet], bool]) -> list[Packet]:
        """Remove and return all queued packets matching ``predicate``.

        Used by AODV to purge packets for a broken next hop.
        """
        kept, removed = [], []
        for pkt in self._items:
            (removed if predicate(pkt) else kept).append(pkt)
        self._items = kept
        return removed

    def _insert(self, pkt: Packet) -> None:
        self._items.append(pkt)

    def _drop(self, pkt: Packet, reason: str) -> None:
        self.dropped += 1
        self._obs_drop.inc()
        if self.drop_callback is not None:
            self.drop_callback(pkt, reason)


class PriQueue(DropTailQueue):
    """Drop-tail queue that gives routing-protocol packets priority.

    This is ns-2's ``Queue/DropTail/PriQueue``, the paper's configured
    interface queue type: AODV control packets are inserted ahead of data
    so route discovery is not starved by a full data backlog.
    """

    def _insert(self, pkt: Packet) -> None:
        if pkt.ptype.is_routing_control:
            index = 0
            while (
                index < len(self._items)
                and self._items[index].ptype.is_routing_control
            ):
                index += 1
            self._items.insert(index, pkt)
        else:
            self._items.append(pkt)


class REDQueue(DropTailQueue):
    """Random Early Detection queue (extension; not used by the paper).

    Implements the classic Floyd/Jacobson average-queue-based early drop
    with linear drop probability between ``min_thresh`` and ``max_thresh``.
    """

    def __init__(
        self,
        env: "Environment",
        limit: int = DEFAULT_QUEUE_LIMIT,
        drop_callback: Optional[DropCallback] = None,
        min_thresh: float = 5.0,
        max_thresh: float = 15.0,
        max_prob: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(env, limit, drop_callback)
        if not 0 < min_thresh < max_thresh:
            raise ValueError("require 0 < min_thresh < max_thresh")
        if not 0 < max_prob <= 1:
            raise ValueError("max_prob must be in (0, 1]")
        self.min_thresh = min_thresh
        self.max_thresh = max_thresh
        self.max_prob = max_prob
        self.weight = weight
        self.avg = 0.0
        self._rng = rng or random.Random(0)

    def put(self, pkt: Packet) -> bool:
        self.avg = (1 - self.weight) * self.avg + self.weight * len(self._items)
        if self.avg >= self.max_thresh:
            self._drop(pkt, "RED")
            return False
        if self.avg >= self.min_thresh:
            fraction = (self.avg - self.min_thresh) / (
                self.max_thresh - self.min_thresh
            )
            if self._rng.random() < fraction * self.max_prob:
                self._drop(pkt, "RED")
                return False
        return super().put(pkt)
