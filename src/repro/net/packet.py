"""The simulation packet: one object per in-flight datagram.

Packets follow ns-2's model: a *common* part (uid, type, size, creation
timestamp) plus a stack of protocol headers (:mod:`repro.net.headers`).
``size`` is the total on-the-wire byte count used to compute transmission
times; transport agents set it to payload plus header overhead.
"""

from __future__ import annotations

import copy as _copy
import dataclasses
import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.addresses import Address, BROADCAST
from repro.net.headers import IpHeader, MacHeader
from repro.perf.fastpath import FASTPATH

_uid_counter = itertools.count()


#: Per-header-class cache of compiled copy functions (built on first use;
#: header dataclasses have fixed field sets, so the copier can be
#: specialised once per class).
_HEADER_COPIERS: dict[type, Any] = {}


def _compile_copier(cls: type, sample: Any) -> Any:
    """Build a specialised ``copy(header)`` function for one header class.

    Headers are flat dataclasses of scalars plus the occasional list/set
    of immutable entries, so a field-by-field copy with fresh containers
    is equivalent to a deep copy at a fraction of the cost — and this is
    the simulator's hottest function.  The copier is generated as one
    straight-line function (no per-field loop, no getattr dispatch), the
    same trick ``copyreg``/``dataclasses`` use for ``__init__``.

    Container detection is by the *current* value of each field on the
    sample instance; header fields never change category (a list field
    stays a list), which the dataclass definitions in
    :mod:`repro.net.headers` guarantee.
    """
    lines = ["def _copy_header(h):", "    d = _new(_cls)"]
    for f in dataclasses.fields(cls):
        value = getattr(sample, f.name)
        if isinstance(value, (list, set, dict)):
            lines.append(f"    v = h.{f.name}")
            lines.append(f"    d.{f.name} = type(v)(v)")
        else:
            lines.append(f"    d.{f.name} = h.{f.name}")
    lines.append("    return d")
    namespace: dict[str, Any] = {"_cls": cls, "_new": cls.__new__}
    exec("\n".join(lines), namespace)  # noqa: S102 - fields, not user input
    return namespace["_copy_header"]


def _dup_header(header: Any) -> Any:
    """Duplicate one protocol header via its compiled per-class copier.

    Anything that is not a dataclass falls back to ``deepcopy``.
    """
    cls = type(header)
    copier = _HEADER_COPIERS.get(cls)
    if copier is None:
        if not dataclasses.is_dataclass(header):
            return _copy.deepcopy(header)
        copier = _compile_copier(cls, header)
        _HEADER_COPIERS[cls] = copier
    return copier(header)


class PacketType(enum.Enum):
    """Packet type tags used for tracing and queue prioritisation."""

    TCP = "tcp"
    ACK = "ack"
    UDP = "udp"
    CBR = "cbr"
    AODV = "aodv"
    DSDV = "dsdv"
    MAC = "mac"  # RTS/CTS/ACK control frames
    EBL = "ebl"

    @property
    def is_routing_control(self) -> bool:
        """True for routing-protocol control traffic (gets queue priority)."""
        return self in (PacketType.AODV, PacketType.DSDV)


@(dataclass(slots=True) if FASTPATH else dataclass)
class Packet:
    """A single simulated packet.

    Attributes
    ----------
    uid:
        Globally unique id (fresh per packet object; copies get new uids
        unless copied via :meth:`copy` with ``keep_uid=True``).
    ptype:
        Coarse packet class for tracing/queueing.
    size:
        Total bytes on the wire (payload + transport + IP headers; MAC
        framing is accounted for as time by the MAC layer).
    ip:
        Network-layer header.
    mac:
        Link-layer header (filled in hop by hop).
    headers:
        Additional protocol headers keyed by name ("tcp", "aodv", ...).
    timestamp:
        Simulated creation time at the original sender; one-way delay is
        measured against this.
    """

    ptype: PacketType
    size: int
    ip: IpHeader
    mac: MacHeader = field(default_factory=MacHeader)
    headers: dict[str, Any] = field(default_factory=dict)
    timestamp: float = 0.0
    uid: int = field(default_factory=lambda: next(_uid_counter))
    #: Number of hops traversed so far (incremented by the routing layer).
    num_forwards: int = 0
    #: Free-form per-packet annotations for tracing/analysis.
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def src(self) -> Address:
        """Network-layer source address."""
        return self.ip.src

    @property
    def dst(self) -> Address:
        """Network-layer destination address."""
        return self.ip.dst

    @property
    def is_broadcast(self) -> bool:
        """True if the network-layer destination is the broadcast address."""
        return self.ip.dst == BROADCAST

    def header(self, name: str) -> Any:
        """Return the named protocol header, raising KeyError if absent."""
        return self.headers[name]

    def copy(self, keep_uid: bool = False) -> "Packet":
        """Copy this packet with independent headers (fresh uid unless
        ``keep_uid``).

        The wireless channel hands an independent copy to every receiver
        so per-hop mutations (TTL, MAC header) cannot alias.  Headers are
        duplicated via compiled per-class copiers rather than ``deepcopy``
        — this is the simulator's hottest path.  The fast path skips the
        dataclass constructor entirely: a copy's fields were already
        validated when the original was built.
        """
        if FASTPATH:
            dup = Packet.__new__(Packet)
            dup.ptype = self.ptype
            dup.size = self.size
            dup.ip = _dup_header(self.ip)
            dup.mac = _dup_header(self.mac)
            dup.headers = {k: _dup_header(v) for k, v in self.headers.items()}
            dup.timestamp = self.timestamp
            # Always draw from the counter, even when keeping the uid: the
            # reference constructor path consumes one per copy, and uid
            # sequences must match it bit-for-bit in the equivalence tests.
            fresh_uid = next(_uid_counter)
            dup.uid = self.uid if keep_uid else fresh_uid
            dup.num_forwards = self.num_forwards
            dup.meta = dict(self.meta)
            return dup
        dup = Packet(
            ptype=self.ptype,
            size=self.size,
            ip=_dup_header(self.ip),
            mac=_dup_header(self.mac),
            headers={k: _dup_header(v) for k, v in self.headers.items()},
            timestamp=self.timestamp,
            num_forwards=self.num_forwards,
            meta=dict(self.meta),
        )
        if keep_uid:
            dup.uid = self.uid
        return dup

    def __repr__(self) -> str:
        return (
            f"Packet(uid={self.uid}, {self.ptype.value}, {self.size}B, "
            f"{self.ip.src}->{self.ip.dst})"
        )
