"""Network plumbing: packets, queues, channel, and node assembly.

This package provides the pieces ns-2 supplied to the original study:
a packet/header model (:mod:`repro.net.packet`, :mod:`repro.net.headers`),
interface queues (:mod:`repro.net.queues`), the shared wireless channel
(:mod:`repro.net.channel`), and the mobile-node stack assembly
(:mod:`repro.net.node`).
"""

from repro.net.addresses import BROADCAST, Address, is_broadcast
from repro.net.packet import Packet, PacketType
from repro.net.queues import DropTailQueue, PriQueue, REDQueue

__all__ = [
    "Address",
    "BROADCAST",
    "DropTailQueue",
    "Packet",
    "PacketType",
    "PriQueue",
    "REDQueue",
    "is_broadcast",
]
