"""Routing protocols: AODV (the paper's fixed choice) plus baselines."""

from repro.routing.aodv import Aodv, AodvParams
from repro.routing.base import RoutingProtocol
from repro.routing.dsdv import Dsdv, DsdvParams
from repro.routing.flooding import Flooding
from repro.routing.static_routing import StaticRouting
from repro.routing.table import RouteEntry, RouteTable

__all__ = [
    "Aodv",
    "AodvParams",
    "Dsdv",
    "DsdvParams",
    "Flooding",
    "RouteEntry",
    "RouteTable",
    "RoutingProtocol",
    "StaticRouting",
]
