"""Routing table shared by AODV and DSDV."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.net.addresses import Address


@dataclass
class RouteEntry:
    """One destination's routing state.

    AODV semantics: an entry is *usable* only while valid and unexpired;
    an invalidated entry retains its (incremented) sequence number so
    stale information can never beat fresher news.
    """

    dst: Address
    next_hop: Address
    hop_count: int
    seqno: int = 0
    valid_seqno: bool = False
    expires: float = float("inf")
    valid: bool = True
    #: Neighbours that route *through us* toward ``dst`` (RERR fan-out).
    precursors: set[Address] = field(default_factory=set)

    def is_usable(self, now: float) -> bool:
        """True if this route may carry data right now."""
        return self.valid and now < self.expires


class RouteTable:
    """Destination-indexed collection of :class:`RouteEntry`."""

    def __init__(self) -> None:
        self._entries: dict[Address, RouteEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries.values())

    def __contains__(self, dst: Address) -> bool:
        return dst in self._entries

    def get(self, dst: Address) -> Optional[RouteEntry]:
        """The entry for ``dst``, or None."""
        return self._entries.get(dst)

    def lookup(self, dst: Address, now: float) -> Optional[RouteEntry]:
        """The entry for ``dst`` if it is usable right now, else None."""
        entry = self._entries.get(dst)
        if entry is not None and entry.is_usable(now):
            return entry
        return None

    def upsert(self, entry: RouteEntry) -> RouteEntry:
        """Insert or replace the entry for ``entry.dst``."""
        self._entries[entry.dst] = entry
        return entry

    def remove(self, dst: Address) -> None:
        """Delete the entry for ``dst`` if present."""
        self._entries.pop(dst, None)

    def invalidate(self, dst: Address, now: float, hold: float = 0.0) -> bool:
        """Mark ``dst``'s route broken, bumping its seqno (AODV rules).

        Returns True if a valid route was actually invalidated.  ``hold``
        keeps the dead entry around (DELETE_PERIOD) so its seqno survives.
        """
        entry = self._entries.get(dst)
        if entry is None or not entry.valid:
            return False
        entry.valid = False
        entry.seqno += 1
        entry.expires = now + hold
        return True

    def routes_via(self, next_hop: Address) -> list[RouteEntry]:
        """All valid routes whose next hop is ``next_hop``."""
        return [
            e for e in self._entries.values() if e.valid and e.next_hop == next_hop
        ]

    def purge_expired(self, now: float, grace: float = 0.0) -> int:
        """Drop entries expired more than ``grace`` seconds ago."""
        stale = [
            dst
            for dst, e in self._entries.items()
            if now >= e.expires + grace
        ]
        for dst in stale:
            del self._entries[dst]
        return len(stale)
