"""Static routing: a fixed next-hop map (testing and wired-up baselines)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Address, BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class StaticRouting(RoutingProtocol):
    """Routes from a hand-built ``dst -> next_hop`` table.

    Destinations absent from the table are assumed to be direct
    neighbours (next hop = destination), which is exactly right for the
    single-hop platoon topologies of the paper and keeps unit tests free
    of route-discovery noise.
    """

    def __init__(self, node: "Node", table: Optional[dict[Address, Address]] = None) -> None:
        super().__init__(node)
        self.table = dict(table or {})

    def add_route(self, dst: Address, next_hop: Address) -> None:
        """Install/overwrite a route."""
        self.table[dst] = next_hop

    def next_hop_for(self, dst: Address) -> Address:
        """Next hop toward ``dst`` (defaults to the destination itself)."""
        return self.table.get(dst, dst)

    def route_packet(self, pkt: Packet) -> None:
        if pkt.ip.dst == BROADCAST:
            self.node.enqueue_to_mac(pkt, BROADCAST)
            return
        self.node.enqueue_to_mac(pkt, self.next_hop_for(pkt.ip.dst))

    def handle_packet(self, pkt: Packet) -> None:
        if self._is_for_us(pkt):
            self.node.deliver_up(pkt)
            return
        if not self._decrement_ttl(pkt):
            return
        pkt.num_forwards += 1
        self.node.count_forward(pkt)
        self.node.enqueue_to_mac(pkt, self.next_hop_for(pkt.ip.dst))
