"""Routing-protocol interface.

A routing protocol sits between the node's agents and its MAC: it chooses
next hops for locally originated packets (:meth:`route_packet`), processes
every packet the MAC delivers (:meth:`handle_packet` — local delivery,
forwarding, or protocol control), and reacts to link-layer feedback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import BROADCAST
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class RoutingProtocol:
    """Base class wiring a protocol to its node."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.env = node.env
        node.set_routing(self)

    @property
    def address(self) -> int:
        """This node's address."""
        return self.node.address

    def start(self) -> None:
        """Start protocol timers/processes (default: nothing)."""

    def route_packet(self, pkt: Packet) -> None:
        """Route a locally originated packet."""
        raise NotImplementedError

    def handle_packet(self, pkt: Packet) -> None:
        """Process a packet delivered by the MAC."""
        raise NotImplementedError

    def link_failed(self, pkt: Packet) -> None:
        """MAC could not deliver ``pkt`` to its next hop (default: drop)."""
        self.node.drop(pkt, "CBK")

    def link_ok(self, pkt: Packet) -> None:
        """MAC confirmed delivery of ``pkt`` (default: ignore)."""

    def handle_crash(self) -> None:
        """Node crashed: discard volatile protocol state (default: none)."""

    def handle_recovery(self) -> None:
        """Node rebooted after a crash (default: nothing to restore)."""

    # -- shared helpers ------------------------------------------------------

    def _is_for_us(self, pkt: Packet) -> bool:
        return pkt.ip.dst in (self.address, BROADCAST)

    def _decrement_ttl(self, pkt: Packet) -> bool:
        """Decrement TTL; returns False (and drops) if it expires."""
        pkt.ip.ttl -= 1
        if pkt.ip.ttl <= 0:
            self.node.drop(pkt, "TTL")
            return False
        return True
