"""Controlled flooding (baseline protocol).

Every data packet is broadcast; every node rebroadcasts each packet it has
not seen before while the TTL lasts, and delivers it up if it is the
destination.  Maximally robust, maximally wasteful — the classic baseline
AODV is measured against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import BROADCAST
from repro.net.packet import Packet
from repro.routing.base import RoutingProtocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Flooding(RoutingProtocol):
    """Flood-and-dedup routing."""

    def __init__(self, node: "Node", default_ttl: int = 8) -> None:
        super().__init__(node)
        if default_ttl < 1:
            raise ValueError("default_ttl must be at least 1")
        self.default_ttl = default_ttl
        self._seen: set[int] = set()
        #: Statistics.
        self.rebroadcasts = 0
        self.duplicates_suppressed = 0

    def route_packet(self, pkt: Packet) -> None:
        pkt.ip.ttl = min(pkt.ip.ttl, self.default_ttl)
        self._seen.add(pkt.uid)
        self.node.enqueue_to_mac(pkt, BROADCAST)

    def handle_packet(self, pkt: Packet) -> None:
        if pkt.uid in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen.add(pkt.uid)
        if pkt.ip.dst in (self.address, BROADCAST):
            self.node.deliver_up(pkt)
            if pkt.ip.dst == self.address:
                return
        if not self._decrement_ttl(pkt):
            return
        pkt.num_forwards += 1
        self.rebroadcasts += 1
        self.node.count_forward(pkt)
        self.node.enqueue_to_mac(pkt, BROADCAST)
