"""Destination-Sequenced Distance Vector routing (proactive baseline).

A compact DSDV: every node periodically broadcasts its full routing table
(destination, metric, even sequence number); receivers adopt routes with
newer sequence numbers, or equal seqno and better metric.  Broken links
(via MAC feedback) advertise an odd seqno with infinite metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Address, BROADCAST
from repro.net.headers import DsdvHeader, IpHeader
from repro.net.packet import Packet, PacketType
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteEntry, RouteTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

#: Metric used to advertise an unreachable destination.
INFINITY_METRIC = 255


@dataclass
class DsdvParams:
    """DSDV timing constants."""

    #: Full-dump broadcast period (ns-2 default: 15 s; we default lower so
    #: small scenarios converge quickly).
    update_interval: float = 5.0
    #: Random jitter applied to each update to avoid synchronisation.
    jitter: float = 0.5
    #: Routes not reconfirmed within this many periods are dropped.
    hold_periods: int = 3


class Dsdv(RoutingProtocol):
    """Proactive distance-vector routing with destination sequence numbers."""

    def __init__(
        self,
        node: "Node",
        params: Optional[DsdvParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(node)
        self.params = params or DsdvParams()
        self.table = RouteTable()
        self.seqno = 0  # our own even seqno
        self._rng = rng or random.Random(node.address)
        self.updates_sent = 0

    def start(self) -> None:
        self.env.process(self._update_loop())

    # -- periodic dumps ----------------------------------------------------------

    def _update_loop(self):
        # Desynchronise first broadcasts.
        yield self.env.timeout(self._rng.uniform(0, self.params.jitter))
        while True:
            self._broadcast_update()
            yield self.env.timeout(
                self.params.update_interval
                + self._rng.uniform(-self.params.jitter, self.params.jitter)
            )

    def _broadcast_update(self) -> None:
        self.seqno += 2
        now = self.env.now
        entries: list[tuple[Address, int, int]] = [(self.address, 0, self.seqno)]
        for entry in self.table:
            if entry.is_usable(now):
                entries.append((entry.dst, entry.hop_count, entry.seqno))
            elif not entry.valid:
                entries.append((entry.dst, INFINITY_METRIC, entry.seqno))
        header = DsdvHeader(entries=entries)
        pkt = Packet(
            ptype=PacketType.DSDV,
            size=IpHeader.WIRE_SIZE + header.wire_size,
            ip=IpHeader(src=self.address, dst=BROADCAST, ttl=1),
            headers={"dsdv": header},
        )
        self.updates_sent += 1
        self.node.enqueue_to_mac(pkt, BROADCAST)

    # -- data path --------------------------------------------------------------------

    def route_packet(self, pkt: Packet) -> None:
        if pkt.ip.dst == BROADCAST:
            self.node.enqueue_to_mac(pkt, BROADCAST)
            return
        route = self.table.lookup(pkt.ip.dst, self.env.now)
        if route is None:
            self.node.drop(pkt, "NRTE")
            return
        self.node.enqueue_to_mac(pkt, route.next_hop)

    def handle_packet(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.DSDV:
            self._recv_update(pkt)
            return
        if self._is_for_us(pkt):
            self.node.deliver_up(pkt)
            return
        if not self._decrement_ttl(pkt):
            return
        route = self.table.lookup(pkt.ip.dst, self.env.now)
        if route is None:
            self.node.drop(pkt, "NRTE")
            return
        pkt.num_forwards += 1
        self.node.count_forward(pkt)
        self.node.enqueue_to_mac(pkt, route.next_hop)

    # -- update processing --------------------------------------------------------------

    def _recv_update(self, pkt: Packet) -> None:
        header: DsdvHeader = pkt.header("dsdv")
        neighbour = pkt.ip.src
        lifetime = self.params.hold_periods * self.params.update_interval
        now = self.env.now
        for dst, metric, seqno in header.entries:
            if dst == self.address:
                continue
            hop_count = metric + 1 if metric < INFINITY_METRIC else INFINITY_METRIC
            entry = self.table.get(dst)
            accept = (
                entry is None
                or seqno > entry.seqno
                or (seqno == entry.seqno and hop_count < entry.hop_count)
            )
            if not accept:
                continue
            if hop_count >= INFINITY_METRIC:
                if entry is not None and entry.next_hop == neighbour:
                    self.table.invalidate(dst, now)
                    entry.seqno = max(entry.seqno, seqno)
                continue
            self.table.upsert(
                RouteEntry(
                    dst=dst,
                    next_hop=neighbour,
                    hop_count=hop_count,
                    seqno=seqno,
                    valid_seqno=True,
                    expires=now + lifetime,
                    valid=True,
                )
            )

    # -- link feedback ------------------------------------------------------------------

    def link_failed(self, pkt: Packet) -> None:
        broken = pkt.mac.dst
        self.node.drop(pkt, "CBK")
        now = self.env.now
        changed = False
        for entry in self.table.routes_via(broken):
            # invalidate() bumps the seqno by one, making it odd — DSDV's
            # marker for a broken route.
            self.table.invalidate(entry.dst, now)
            changed = True
        if changed:
            self._broadcast_update()
