"""AODV protocol constants (RFC 3561 §10, with ns-2's customary values)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AodvParams:
    """Tunable AODV constants.

    Defaults follow RFC 3561 §10 except where ns-2's implementation
    (the paper's substrate) differs, noted inline.
    """

    #: How long an active route stays usable after last use (ns-2: 10 s).
    active_route_timeout: float = 10.0
    #: Lifetime a destination advertises for itself in a RREP (ns-2: 10 s).
    my_route_timeout: float = 10.0
    #: Network diameter bound, hops.
    net_diameter: int = 35
    #: Estimated per-hop traversal time.
    node_traversal_time: float = 0.04
    #: RREQ retries before the destination is declared unreachable.
    rreq_retries: int = 2
    #: Expanding-ring search: first TTL, increment, and escalation bound.
    ttl_start: int = 5
    ttl_increment: int = 2
    ttl_threshold: int = 7
    #: How long (origin, rreq_id) pairs stay in the duplicate cache.
    path_discovery_time: float = 30.0
    #: Dead routes linger this long so their seqnos survive (DELETE_PERIOD).
    delete_period: float = 15.0
    #: Data packets buffered per destination while discovery runs.
    buffer_size: int = 64
    #: Buffered packets older than this are dropped (ns-2: 30 s).
    buffer_timeout: float = 30.0
    #: HELLO beacon interval; 0 disables beaconing.  ns-2 disables HELLOs
    #: when link-layer failure detection is available, and so do we — the
    #: scenario builder turns beaconing on only for MACs without feedback.
    hello_interval: float = 0.0
    #: Missed HELLOs before a neighbour is declared lost.
    allowed_hello_loss: int = 2
    #: When an intermediate node answers a RREQ from its cache, also send
    #: a gratuitous RREP to the destination so it learns the reverse
    #: route without its own discovery (RFC 3561 §6.6.3, 'G' flag).
    gratuitous_rrep: bool = True

    @property
    def net_traversal_time(self) -> float:
        """Round-trip bound across the network (RFC 3561)."""
        return 2.0 * self.node_traversal_time * self.net_diameter

    def ring_traversal_time(self, ttl: int) -> float:
        """RREP wait time for an expanding-ring RREQ with ``ttl``."""
        return 2.0 * self.node_traversal_time * (ttl + 2)
