"""The AODV routing protocol engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Address, BROADCAST
from repro.net.headers import AodvHeader
from repro.net.packet import Packet, PacketType
from repro.obs import api as obs
from repro.routing.aodv.config import AodvParams
from repro.routing.aodv.messages import make_hello, make_rerr, make_rreq, make_rrep
from repro.routing.base import RoutingProtocol
from repro.routing.table import RouteEntry, RouteTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass
class _Discovery:
    """State of an in-progress route discovery."""

    ttl: int
    retries: int = 0
    buffer: list[tuple[Packet, float]] = field(default_factory=list)
    #: Generation token: bumping it cancels the outstanding retry timer.
    generation: int = 0


@dataclass
class AodvStats:
    """Protocol counters used by tests and the experiment reports."""

    rreq_sent: int = 0
    rreq_forwarded: int = 0
    rrep_sent: int = 0
    rrep_forwarded: int = 0
    rerr_sent: int = 0
    hello_sent: int = 0
    discoveries: int = 0
    discovery_failures: int = 0
    buffered: int = 0
    buffer_drops: int = 0
    #: Times the whole protocol state was wiped by a node crash.
    state_resets: int = 0


class Aodv(RoutingProtocol):
    """Ad hoc On-demand Distance Vector routing."""

    def __init__(
        self, node: "Node", params: Optional[AodvParams] = None
    ) -> None:
        super().__init__(node)
        self.params = params or AodvParams()
        self.table = RouteTable()
        self.seqno = 0
        self.rreq_id = 0
        self.stats = AodvStats()
        self._discoveries: dict[Address, _Discovery] = {}
        #: (origin, rreq_id) duplicate cache with insertion times.
        self._rreq_seen: dict[tuple[Address, int], float] = {}
        #: Last HELLO time per neighbour (when beaconing).
        self._neighbour_heard: dict[Address, float] = {}
        self._obs_rreq = obs.counter("aodv.rreq.sent")
        self._obs_rrep = obs.counter("aodv.rrep.sent")
        self._obs_rerr = obs.counter("aodv.rerr.sent")
        self._obs_disc = obs.counter("aodv.discoveries")
        self._obs_disc_fail = obs.counter("aodv.discovery_failures")

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.params.hello_interval > 0:
            self.env.process(self._hello_loop())
            self.env.process(self._neighbour_watchdog())

    def handle_crash(self) -> None:
        """Lose all volatile state: routes, discoveries, caches.

        Buffered data packets die with the node (dropped as NODE-DOWN);
        outstanding discovery timers find their generation gone and lapse.
        """
        for discovery in self._discoveries.values():
            for pkt, _ in discovery.buffer:
                self.node.drop(pkt, "NODE-DOWN")
        self._discoveries.clear()
        self.table = RouteTable()
        self._rreq_seen.clear()
        self._neighbour_heard.clear()
        self.stats.state_resets += 1

    def handle_recovery(self) -> None:
        """Reboot: bump the sequence number so stale cached routes to us
        lose against anything we advertise post-restart (RFC 3561 §6.13
        spirit — a rebooted node must not reuse old sequence numbers)."""
        self.seqno += 1

    # -- origination -------------------------------------------------------------

    def route_packet(self, pkt: Packet) -> None:
        dst = pkt.ip.dst
        if dst == BROADCAST:
            self.node.enqueue_to_mac(pkt, BROADCAST)
            return
        if dst == self.address:
            self.node.deliver_up(pkt)
            return
        route = self.table.lookup(dst, self.env.now)
        if route is not None:
            self._refresh(dst)
            self._refresh(route.next_hop)
            self.node.enqueue_to_mac(pkt, route.next_hop)
            return
        self._buffer_and_discover(pkt)

    def _buffer_and_discover(self, pkt: Packet) -> None:
        dst = pkt.ip.dst
        discovery = self._discoveries.get(dst)
        if discovery is None:
            discovery = _Discovery(ttl=self.params.ttl_start)
            self._discoveries[dst] = discovery
            self._queue_packet(discovery, pkt)
            self.stats.discoveries += 1
            self._obs_disc.inc()
            self._send_rreq(dst, discovery)
        else:
            self._queue_packet(discovery, pkt)

    def _queue_packet(self, discovery: _Discovery, pkt: Packet) -> None:
        now = self.env.now
        # Evict stale buffered packets first.
        fresh = []
        for queued, queued_at in discovery.buffer:
            if now - queued_at > self.params.buffer_timeout:
                self.stats.buffer_drops += 1
                self.node.drop(queued, "BUF-TIMEOUT")
            else:
                fresh.append((queued, queued_at))
        discovery.buffer = fresh
        if len(discovery.buffer) >= self.params.buffer_size:
            self.stats.buffer_drops += 1
            self.node.drop(pkt, "BUF-FULL")
            return
        discovery.buffer.append((pkt, now))
        self.stats.buffered += 1

    def _send_rreq(self, dst: Address, discovery: _Discovery) -> None:
        self.seqno += 1
        self.rreq_id += 1
        entry = self.table.get(dst)
        dst_seqno = entry.seqno if entry is not None and entry.valid_seqno else 0
        unknown = entry is None or not entry.valid_seqno
        rreq = make_rreq(
            src=self.address,
            rreq_id=self.rreq_id,
            origin_seqno=self.seqno,
            dst=dst,
            dst_seqno=dst_seqno,
            unknown_seqno=unknown,
            ttl=discovery.ttl,
        )
        self._rreq_seen[(self.address, self.rreq_id)] = self.env.now
        self.stats.rreq_sent += 1
        self._obs_rreq.inc()
        self.node.enqueue_to_mac(rreq, BROADCAST)
        discovery.generation += 1
        self.env.process(
            self._discovery_timer(dst, discovery.generation, discovery.ttl)
        )

    def _discovery_timer(self, dst: Address, generation: int, ttl: int):
        yield self.env.timeout(self.params.ring_traversal_time(ttl))
        discovery = self._discoveries.get(dst)
        if discovery is None or discovery.generation != generation:
            return  # discovery completed or superseded
        if self.table.lookup(dst, self.env.now) is not None:
            self._complete_discovery(dst)
            return
        discovery.retries += 1
        if discovery.retries > self.params.rreq_retries:
            self._fail_discovery(dst, discovery)
            return
        # Expanding-ring escalation.
        if discovery.ttl < self.params.ttl_threshold:
            discovery.ttl = min(
                discovery.ttl + self.params.ttl_increment,
                self.params.ttl_threshold,
            )
        else:
            discovery.ttl = self.params.net_diameter
        self._send_rreq(dst, discovery)

    def _fail_discovery(self, dst: Address, discovery: _Discovery) -> None:
        self.stats.discovery_failures += 1
        self._obs_disc_fail.inc()
        for pkt, _ in discovery.buffer:
            self.node.drop(pkt, "NRTE")
        del self._discoveries[dst]

    def _complete_discovery(self, dst: Address) -> None:
        discovery = self._discoveries.pop(dst, None)
        if discovery is None:
            return
        route = self.table.lookup(dst, self.env.now)
        if route is None:  # pragma: no cover - defensive
            return
        for pkt, queued_at in discovery.buffer:
            if self.env.now - queued_at > self.params.buffer_timeout:
                self.stats.buffer_drops += 1
                self.node.drop(pkt, "BUF-TIMEOUT")
                continue
            self._refresh(dst)
            self.node.enqueue_to_mac(pkt, route.next_hop)

    # -- packet reception -----------------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.AODV:
            self._handle_control(pkt)
            return
        self._handle_data(pkt)

    def _handle_data(self, pkt: Packet) -> None:
        if pkt.ip.dst in (self.address, BROADCAST):
            self.node.deliver_up(pkt)
            return
        if not self._decrement_ttl(pkt):
            return
        route = self.table.lookup(pkt.ip.dst, self.env.now)
        if route is None:
            # Forwarding failure: report the loss upstream (RFC 3561 §6.11).
            self.node.drop(pkt, "NRTE")
            self._broadcast_rerr([(pkt.ip.dst, self._last_seqno(pkt.ip.dst))])
            return
        self._refresh(pkt.ip.dst)
        self._refresh(route.next_hop)
        self._refresh(pkt.ip.src)
        pkt.num_forwards += 1
        self.node.count_forward(pkt)
        self.node.enqueue_to_mac(pkt, route.next_hop)

    def _handle_control(self, pkt: Packet) -> None:
        header: AodvHeader = pkt.header("aodv")
        prev_hop = pkt.mac.src
        if header.kind == AodvHeader.KIND_RREQ:
            self._recv_rreq(pkt, header, prev_hop)
        elif header.kind == AodvHeader.KIND_RREP:
            self._recv_rrep(pkt, header, prev_hop)
        elif header.kind == AodvHeader.KIND_RERR:
            self._recv_rerr(header, prev_hop)
        elif header.kind == AodvHeader.KIND_HELLO:
            self._recv_hello(header, prev_hop)

    # -- RREQ ----------------------------------------------------------------------------

    def _recv_rreq(self, pkt: Packet, header: AodvHeader, prev_hop: Address) -> None:
        if header.origin == self.address:
            return  # our own flood came back
        key = (header.origin, header.rreq_id)
        now = self.env.now
        self._expire_rreq_cache(now)
        if key in self._rreq_seen:
            return
        self._rreq_seen[key] = now

        hop_count = header.hop_count + 1
        # Create/refresh the reverse route to the originator.
        self._update_route(
            dst=header.origin,
            next_hop=prev_hop,
            hop_count=hop_count,
            seqno=header.origin_seqno,
            valid_seqno=True,
            lifetime=self.params.net_traversal_time * 2,
        )
        # And a route to the previous hop itself.
        self._update_neighbour(prev_hop)

        if header.dst == self.address:
            # We are the destination: answer with our own seqno.
            if header.dst_seqno > self.seqno:
                self.seqno = header.dst_seqno
            if not header.unknown_seqno and header.dst_seqno == self.seqno:
                self.seqno += 1
            self._send_rrep(
                origin=header.origin,
                dst=self.address,
                dst_seqno=self.seqno,
                hop_count=0,
                lifetime=self.params.my_route_timeout,
            )
            return

        entry = self.table.lookup(header.dst, now)
        fresh_enough = (
            entry is not None
            and entry.valid_seqno
            and (header.unknown_seqno or entry.seqno >= header.dst_seqno)
        )
        if fresh_enough:
            # Intermediate reply from our cached route.
            remaining = max(0.0, entry.expires - now)
            self._send_rrep(
                origin=header.origin,
                dst=header.dst,
                dst_seqno=entry.seqno,
                hop_count=entry.hop_count,
                lifetime=remaining,
            )
            if self.params.gratuitous_rrep:
                # Tell the destination about the origin too, so its
                # return traffic needs no discovery of its own.
                self._send_gratuitous_rrep(header, entry)
            return

        # Re-flood while TTL lasts.
        pkt.ip.ttl -= 1
        if pkt.ip.ttl <= 0:
            return
        header.hop_count = hop_count
        self.stats.rreq_forwarded += 1
        self.node.enqueue_to_mac(pkt, BROADCAST)

    def _expire_rreq_cache(self, now: float) -> None:
        horizon = now - self.params.path_discovery_time
        stale = [k for k, t in self._rreq_seen.items() if t < horizon]
        for key in stale:
            del self._rreq_seen[key]

    # -- RREP -------------------------------------------------------------------------------

    def _send_rrep(
        self,
        origin: Address,
        dst: Address,
        dst_seqno: int,
        hop_count: int,
        lifetime: float,
    ) -> None:
        reverse = self.table.lookup(origin, self.env.now)
        if reverse is None:
            return  # reverse path evaporated
        rrep = make_rrep(
            src=self.address,
            origin=origin,
            dst=dst,
            dst_seqno=dst_seqno,
            hop_count=hop_count,
            lifetime=lifetime,
            ttl=self.params.net_diameter,
        )
        self.stats.rrep_sent += 1
        self._obs_rrep.inc()
        # Forward route's precursors learn about the reverse next hop.
        forward = self.table.get(dst)
        if forward is not None:
            forward.precursors.add(reverse.next_hop)
        self.node.enqueue_to_mac(rrep, reverse.next_hop)

    def _send_gratuitous_rrep(self, rreq: AodvHeader, route) -> None:
        """Unicast a RREP describing the RREQ's *origin* toward the
        cached route's destination (RFC 3561 §6.6.3)."""
        origin_route = self.table.lookup(rreq.origin, self.env.now)
        if origin_route is None:
            return
        grat = make_rrep(
            src=self.address,
            origin=rreq.dst,      # travels toward the destination
            dst=rreq.origin,      # and describes a route to the origin
            dst_seqno=rreq.origin_seqno,
            hop_count=origin_route.hop_count,
            lifetime=max(0.0, origin_route.expires - self.env.now),
            ttl=self.params.net_diameter,
        )
        self.stats.rrep_sent += 1
        self._obs_rrep.inc()
        self.node.enqueue_to_mac(grat, route.next_hop)

    def _recv_rrep(self, pkt: Packet, header: AodvHeader, prev_hop: Address) -> None:
        hop_count = header.hop_count + 1
        self._update_neighbour(prev_hop)
        self._update_route(
            dst=header.dst,
            next_hop=prev_hop,
            hop_count=hop_count,
            seqno=header.dst_seqno,
            valid_seqno=True,
            lifetime=header.lifetime or self.params.active_route_timeout,
        )
        if header.origin == self.address:
            self._complete_discovery(header.dst)
            return
        # Forward the RREP along the reverse path.
        reverse = self.table.lookup(header.origin, self.env.now)
        if reverse is None:
            self.node.drop(pkt, "NRTE-RREP")
            return
        pkt.ip.ttl -= 1
        if pkt.ip.ttl <= 0:
            self.node.drop(pkt, "TTL")
            return
        header.hop_count = hop_count
        forward = self.table.get(header.dst)
        if forward is not None:
            forward.precursors.add(reverse.next_hop)
        self.stats.rrep_forwarded += 1
        self.node.enqueue_to_mac(pkt, reverse.next_hop)

    # -- RERR and link failures -----------------------------------------------------------------

    def link_failed(self, pkt: Packet) -> None:
        """MAC retry exhaustion: the link to ``pkt.mac.dst`` is broken."""
        broken = pkt.mac.dst
        self.node.drop(pkt, "CBK")
        unreachable: list[tuple[Address, int]] = []
        for entry in self.table.routes_via(broken):
            self.table.invalidate(
                entry.dst, self.env.now, hold=self.params.delete_period
            )
            unreachable.append((entry.dst, entry.seqno))
        if unreachable:
            self._broadcast_rerr(unreachable)

    def _broadcast_rerr(self, unreachable: list[tuple[Address, int]]) -> None:
        rerr = make_rerr(self.address, unreachable)
        self.stats.rerr_sent += 1
        self._obs_rerr.inc()
        self.node.enqueue_to_mac(rerr, BROADCAST)

    def _recv_rerr(self, header: AodvHeader, prev_hop: Address) -> None:
        propagate: list[tuple[Address, int]] = []
        for dst, seqno in header.unreachable:
            entry = self.table.get(dst)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == prev_hop
            ):
                entry.seqno = max(entry.seqno, seqno)
                self.table.invalidate(
                    dst, self.env.now, hold=self.params.delete_period
                )
                if entry.precursors:
                    propagate.append((dst, entry.seqno))
        if propagate:
            self._broadcast_rerr(propagate)

    # -- HELLO beaconing ------------------------------------------------------------------------------

    def _hello_loop(self):
        while True:
            yield self.env.timeout(self.params.hello_interval)
            self.seqno += 1
            hello = make_hello(
                self.address,
                self.seqno,
                self.params.allowed_hello_loss * self.params.hello_interval,
            )
            self.stats.hello_sent += 1
            self.node.enqueue_to_mac(hello, BROADCAST)

    def _recv_hello(self, header: AodvHeader, prev_hop: Address) -> None:
        self._neighbour_heard[header.dst] = self.env.now
        self._update_route(
            dst=header.dst,
            next_hop=header.dst,
            hop_count=1,
            seqno=header.dst_seqno,
            valid_seqno=True,
            lifetime=header.lifetime,
        )

    def _neighbour_watchdog(self):
        interval = self.params.hello_interval
        while True:
            yield self.env.timeout(interval)
            deadline = self.env.now - self.params.allowed_hello_loss * interval
            lost = [
                n for n, heard in self._neighbour_heard.items() if heard < deadline
            ]
            for neighbour in lost:
                del self._neighbour_heard[neighbour]
                unreachable = []
                for entry in self.table.routes_via(neighbour):
                    self.table.invalidate(
                        entry.dst, self.env.now, hold=self.params.delete_period
                    )
                    unreachable.append((entry.dst, entry.seqno))
                if unreachable:
                    self._broadcast_rerr(unreachable)

    # -- route-table helpers -------------------------------------------------------------------------

    def _update_route(
        self,
        dst: Address,
        next_hop: Address,
        hop_count: int,
        seqno: int,
        valid_seqno: bool,
        lifetime: float,
    ) -> None:
        """Apply RFC 3561 route-update rules for learned routing state."""
        now = self.env.now
        entry = self.table.get(dst)
        expires = now + lifetime
        if entry is None:
            self.table.upsert(
                RouteEntry(
                    dst=dst,
                    next_hop=next_hop,
                    hop_count=hop_count,
                    seqno=seqno,
                    valid_seqno=valid_seqno,
                    expires=expires,
                    valid=True,
                )
            )
            return
        newer = valid_seqno and (
            not entry.valid_seqno
            or seqno > entry.seqno
            or (seqno == entry.seqno and hop_count < entry.hop_count)
            or (seqno == entry.seqno and not entry.is_usable(now))
        )
        if newer:
            entry.next_hop = next_hop
            entry.hop_count = hop_count
            entry.seqno = seqno
            entry.valid_seqno = True
            entry.valid = True
            entry.expires = max(entry.expires, expires)
        elif entry.next_hop == next_hop and entry.valid:
            entry.expires = max(entry.expires, expires)

    def _update_neighbour(self, neighbour: Address) -> None:
        entry = self.table.get(neighbour)
        lifetime = self.env.now + self.params.active_route_timeout
        if entry is None:
            self.table.upsert(
                RouteEntry(
                    dst=neighbour,
                    next_hop=neighbour,
                    hop_count=1,
                    seqno=0,
                    valid_seqno=False,
                    expires=lifetime,
                    valid=True,
                )
            )
        elif entry.valid:
            entry.expires = max(entry.expires, lifetime)

    def _refresh(self, dst: Address) -> None:
        entry = self.table.get(dst)
        if entry is not None and entry.valid:
            entry.expires = max(
                entry.expires, self.env.now + self.params.active_route_timeout
            )

    def _last_seqno(self, dst: Address) -> int:
        entry = self.table.get(dst)
        return entry.seqno if entry is not None else 0
