"""Constructors for AODV control packets."""

from __future__ import annotations

from repro.net.addresses import Address, BROADCAST
from repro.net.headers import AodvHeader, IpHeader
from repro.net.packet import Packet, PacketType


def _control_packet(
    header: AodvHeader, src: Address, dst: Address, ttl: int
) -> Packet:
    return Packet(
        ptype=PacketType.AODV,
        size=IpHeader.WIRE_SIZE + header.wire_size,
        ip=IpHeader(src=src, dst=dst, ttl=ttl),
        headers={"aodv": header},
    )


def make_rreq(
    src: Address,
    rreq_id: int,
    origin_seqno: int,
    dst: Address,
    dst_seqno: int,
    unknown_seqno: bool,
    ttl: int,
) -> Packet:
    """Build a route-request broadcast."""
    header = AodvHeader(
        kind=AodvHeader.KIND_RREQ,
        hop_count=0,
        rreq_id=rreq_id,
        dst=dst,
        dst_seqno=dst_seqno,
        unknown_seqno=unknown_seqno,
        origin=src,
        origin_seqno=origin_seqno,
    )
    return _control_packet(header, src, BROADCAST, ttl)


def make_rrep(
    src: Address,
    origin: Address,
    dst: Address,
    dst_seqno: int,
    hop_count: int,
    lifetime: float,
    ttl: int,
) -> Packet:
    """Build a route-reply unicast toward ``origin``.

    ``dst`` is the destination the reply describes a route to; ``src`` is
    the replying node (destination itself or an intermediate with a fresh
    route).
    """
    header = AodvHeader(
        kind=AodvHeader.KIND_RREP,
        hop_count=hop_count,
        dst=dst,
        dst_seqno=dst_seqno,
        origin=origin,
        lifetime=lifetime,
    )
    return _control_packet(header, src, origin, ttl)


def make_rerr(
    src: Address, unreachable: list[tuple[Address, int]]
) -> Packet:
    """Build a route-error broadcast listing unreachable destinations."""
    if not unreachable:
        raise ValueError("RERR requires at least one unreachable destination")
    header = AodvHeader(
        kind=AodvHeader.KIND_RERR,
        unreachable=list(unreachable),
    )
    return _control_packet(header, src, BROADCAST, ttl=1)


def make_hello(src: Address, seqno: int, lifetime: float) -> Packet:
    """Build a HELLO beacon (a 1-hop RREP for ourselves)."""
    header = AodvHeader(
        kind=AodvHeader.KIND_HELLO,
        dst=src,
        dst_seqno=seqno,
        lifetime=lifetime,
    )
    return _control_packet(header, src, BROADCAST, ttl=1)
