"""Ad hoc On-demand Distance Vector routing (RFC 3561 subset).

The paper's fixed routing protocol.  :class:`~repro.routing.aodv.protocol.Aodv`
implements on-demand route discovery (RREQ broadcast with expanding-ring
search, RREP unicast along the reverse path), destination sequence numbers,
route-error reporting, data buffering during discovery, and optional HELLO
beaconing for MACs that provide no link-layer feedback.
"""

from repro.routing.aodv.config import AodvParams
from repro.routing.aodv.protocol import Aodv

__all__ = ["Aodv", "AodvParams"]
