"""ns-2-style tracing: in-memory records, text trace files, NAM output."""

from repro.trace.events import TraceRecord
from repro.trace.nam import NamTraceWriter
from repro.trace.parser import parse_trace_file, parse_trace_line
from repro.trace.writer import Tracer

__all__ = [
    "NamTraceWriter",
    "TraceRecord",
    "Tracer",
    "parse_trace_file",
    "parse_trace_line",
]
