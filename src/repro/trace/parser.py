"""Parse trace lines back into :class:`TraceRecord` objects.

This closes the loop the paper used: simulate → write trace file →
parse offline → compute delay statistics.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Union

from repro.trace.events import TraceRecord

_LINE_RE = re.compile(
    r"^(?P<event>[srfD]) "
    r"(?P<time>\d+\.\d+) "
    r"_(?P<node>\d+)_ "
    r"(?P<layer>\S+) --- "
    r"(?P<uid>\d+) "
    r"(?P<ptype>\S+) "
    r"(?P<size>\d+) "
    r"\[(?P<src>-?\d+):(?P<sport>\d+) (?P<dst>-?\d+):(?P<dport>\d+)\] "
    r"\{seq (?P<seqno>-|-?\d+) ts (?P<timestamp>\d+\.\d+)\}$"
)


class TraceParseError(ValueError):
    """Raised when a trace line does not match the expected format."""


def parse_trace_line(line: str) -> TraceRecord:
    """Parse one trace line."""
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TraceParseError(f"malformed trace line: {line!r}")
    seq = match["seqno"]
    return TraceRecord(
        event=match["event"],
        time=float(match["time"]),
        node=int(match["node"]),
        layer=match["layer"],
        uid=int(match["uid"]),
        ptype=match["ptype"],
        size=int(match["size"]),
        src=int(match["src"]),
        dst=int(match["dst"]),
        sport=int(match["sport"]),
        dport=int(match["dport"]),
        seqno=None if seq == "-" else int(seq),
        timestamp=float(match["timestamp"]),
    )


def parse_trace_file(source: Union[IO[str], Iterable[str]]) -> list[TraceRecord]:
    """Parse every non-empty line of a trace stream."""
    records = []
    for line in source:
        line = line.strip()
        if line:
            records.append(parse_trace_line(line))
    return records
