"""NAM (Network AniMator) trace output.

The paper's workflow launched ``nam`` on completion to animate the
scenario.  We emit the same textual NAM wireless format — node creation,
timed node-position updates, and packet hop events — so the output is a
faithful data product even without the animator GUI.
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class NamTraceWriter:
    """Writes NAM-format animation events for a set of mobile nodes."""

    def __init__(
        self,
        stream: IO[str],
        width: float = 1000.0,
        height: float = 1000.0,
    ) -> None:
        self.stream = stream
        self.width = width
        self.height = height
        self._initialised = False

    def write_header(self, node_ids: Sequence[int]) -> None:
        """Emit the version line, topography, and node declarations."""
        self.stream.write("V -t * -v 1.0a5 -a 0\n")
        self.stream.write(f"W -t * -x {self.width:g} -y {self.height:g}\n")
        for nid in node_ids:
            self.stream.write(
                f"n -t * -a {nid} -s {nid} -S UP -v circle -c black\n"
            )
        self._initialised = True

    def write_position(self, time: float, node: int, x: float, y: float) -> None:
        """Emit a node-position update at ``time``."""
        self.stream.write(
            f"n -t {time:.6f} -s {node} -x {x:.2f} -y {y:.2f} "
            f"-U 0.00 -V 0.00 -T 0.0\n"
        )

    def write_packet_hop(
        self,
        time: float,
        src: int,
        dst: int,
        size: int,
        uid: int,
        ptype: str,
    ) -> None:
        """Emit a packet hop (enqueue + receive pair)."""
        self.stream.write(
            f"+ -t {time:.6f} -s {src} -d {dst} -p {ptype} -e {size} -i {uid}\n"
        )
        self.stream.write(
            f"h -t {time:.6f} -s {src} -d {dst} -p {ptype} -e {size} -i {uid}\n"
        )

    def snapshot_positions(
        self, time: float, nodes: Sequence["Node"]
    ) -> None:
        """Write the current position of every node."""
        for node in nodes:
            x, y = node.mobility.position(time)
            self.write_position(time, node.address, x, y)

    def animate(
        self,
        nodes: Sequence["Node"],
        duration: float,
        interval: float = 1.0,
    ) -> None:
        """Emit a complete animation: header plus periodic position frames."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self._initialised:
            self.write_header([n.address for n in nodes])
        t = 0.0
        while t <= duration:
            self.snapshot_positions(t, nodes)
            t += interval
