"""The tracer: collects :class:`TraceRecord` objects and renders trace lines.

The authors of the paper computed one-way and maximum delay "offline by
parsing the trace file"; :mod:`repro.stats.delay` does the same against
either the in-memory records or a parsed file.
"""

from __future__ import annotations

from typing import IO, Optional

from repro.net.packet import Packet
from repro.trace.events import TraceRecord


def format_trace_line(rec: TraceRecord) -> str:
    """Render a record in our ns-2-flavoured single-line format::

        s 1.234567890 _0_ AGT --- 17 tcp 1040 [0:1 2:1] {seq 5 ts 1.2345}
    """
    seq = rec.seqno if rec.seqno is not None else "-"
    return (
        f"{rec.event} {rec.time:.9f} _{rec.node}_ {rec.layer} --- "
        f"{rec.uid} {rec.ptype} {rec.size} "
        f"[{rec.src}:{rec.sport} {rec.dst}:{rec.dport}] "
        f"{{seq {seq} ts {rec.timestamp:.9f}}}"
    )


class Tracer:
    """Collects packet events from every node in a simulation.

    Parameters
    ----------
    stream:
        Optional text stream; when given, each record is also written as a
        formatted trace line (the equivalent of ns-2's trace file).
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.records: list[TraceRecord] = []
        self.stream = stream

    def __len__(self) -> int:
        return len(self.records)

    def record(
        self, event: str, time: float, node: int, layer: str, pkt: Packet
    ) -> None:
        """Record one packet event (called by nodes and MACs)."""
        seqno = None
        tcp = pkt.headers.get("tcp")
        if tcp is not None:
            seqno = tcp.ackno if tcp.is_ack else tcp.seqno
        else:
            udp = pkt.headers.get("udp")
            if udp is not None:
                seqno = udp.seqno
        rec = TraceRecord(
            event=event,
            time=time,
            node=node,
            layer=layer,
            uid=pkt.uid,
            ptype=pkt.ptype.value,
            size=pkt.size,
            src=pkt.ip.src,
            dst=pkt.ip.dst,
            sport=pkt.ip.sport,
            dport=pkt.ip.dport,
            seqno=seqno,
            timestamp=pkt.timestamp,
        )
        self.records.append(rec)
        if self.stream is not None:
            self.stream.write(format_trace_line(rec) + "\n")

    # -- queries used by the offline analysis --------------------------------

    def filter(
        self,
        event: Optional[str] = None,
        node: Optional[int] = None,
        layer: Optional[str] = None,
        ptype: Optional[str] = None,
    ) -> list[TraceRecord]:
        """Records matching all the given criteria."""
        out = []
        for rec in self.records:
            if event is not None and rec.event != event:
                continue
            if node is not None and rec.node != node:
                continue
            if layer is not None and rec.layer != layer:
                continue
            if ptype is not None and rec.ptype != ptype:
                continue
            out.append(rec)
        return out

    def agent_receptions(self, node: int, ptype: str = "tcp") -> list[TraceRecord]:
        """Data packets delivered to ``node``'s agents, in arrival order."""
        return self.filter(event="r", node=node, layer="AGT", ptype=ptype)

    def drops(self) -> list[TraceRecord]:
        """All drop events."""
        return self.filter(event="D")

    def write(self, stream: IO[str]) -> int:
        """Dump all collected records as trace lines; returns line count."""
        for rec in self.records:
            stream.write(format_trace_line(rec) + "\n")
        return len(self.records)
