"""Trace record structure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class TraceRecord:
    """One trace line: a packet event at a node and layer.

    Events follow ns-2's convention:

    * ``s`` — sent at this layer
    * ``r`` — received at this layer
    * ``f`` — forwarded by the routing layer
    * ``D`` — dropped (the layer field then carries the drop reason)
    """

    event: str
    time: float
    node: int
    layer: str
    uid: int
    ptype: str
    size: int
    src: int
    dst: int
    sport: int = 0
    dport: int = 0
    seqno: Optional[int] = None
    timestamp: float = 0.0

    #: Events considered valid in a trace.
    EVENTS = ("s", "r", "f", "D")

    def __post_init__(self) -> None:
        if self.event not in self.EVENTS:
            raise ValueError(f"unknown trace event {self.event!r}")
