"""Canonical trial fingerprints for equivalence and golden testing.

Two views of one trial, both JSON-serialisable and bit-exact:

* :func:`metrics_summary` — the paper-facing numbers (per-flow delays,
  throughput samples, steady-state levels).  Golden regression tests
  snapshot this; the differential-equivalence tests require it to be
  identical between the optimized fast path and ``REPRO_NO_FASTPATH=1``.
* :func:`trace_digest` — a SHA-256 over every packet-trace record plus
  the metric payload.  One short string that moves across process
  boundaries (the reference run executes in a subprocess because the
  fast-path flag is baked in at import time).

Floats are serialised with :func:`repr`, which round-trips exactly: a
single ulp of drift anywhere in the event stream changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.runner import TrialResult


def metrics_summary(result: TrialResult) -> dict[str, Any]:
    """Bit-exact, JSON-stable summary of one trial's observable metrics."""
    platoons = {}
    for pid in (1, 2):
        platoon = result.platoon(pid)
        flows = []
        for flow in platoon.flows:
            flows.append(
                {
                    "src": flow.src,
                    "dst": flow.dst,
                    "follower_index": flow.follower_index,
                    "delivered_segments": flow.delivered_segments,
                    "duplicates": flow.duplicates,
                    "delays": [
                        [repr(s.sent_at), repr(s.received_at)]
                        for s in flow.delays
                    ],
                }
            )
        platoons[str(pid)] = {
            "flows": flows,
            "throughput": [
                [repr(s.time), repr(s.mbps)] for s in platoon.throughput.samples
            ],
            "communicating_from": repr(platoon.communicating_from),
            "communicating_until": (
                None
                if platoon.communicating_until is None
                else repr(platoon.communicating_until)
            ),
        }
    return {
        "trial": result.config.name,
        "duration": repr(result.config.duration),
        "platoons": platoons,
    }


def trace_digest(result: TrialResult) -> str:
    """SHA-256 fingerprint of the packet event trace plus all metrics.

    Requires the trial to have run with ``enable_trace=True``.
    """
    if result.tracer is None:
        raise ValueError("trace_digest needs a trial run with enable_trace=True")
    records = [
        [rec.event, repr(rec.time), rec.node, rec.layer, rec.ptype, rec.size,
         rec.uid]
        for rec in result.tracer.records
    ]
    blob = json.dumps(
        [records, metrics_summary(result)], sort_keys=True, default=str
    ).encode()
    return hashlib.sha256(blob).hexdigest()
