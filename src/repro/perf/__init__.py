"""Performance layer: the fast-path gate and the benchmark harness.

This package deliberately exposes only the :data:`~repro.perf.fastpath.FASTPATH`
flag at import time — the benchmark harness (:mod:`repro.perf.bench`) pulls
in the whole scenario stack and must be imported explicitly so low layers
(:mod:`repro.des`, :mod:`repro.net`) can import the flag without a cycle.
"""

from repro.perf.fastpath import FASTPATH, fastpath_enabled

__all__ = ["FASTPATH", "fastpath_enabled"]
