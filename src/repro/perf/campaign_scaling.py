"""Worker-pool scaling bench for the campaign runner.

Runs the same multi-seed campaign twice — sequentially (``jobs=1``) and
on the worker pool (``jobs=N``) — and reports the wall-clock speedup
together with a field-by-field comparison of the per-trial records.
The comparison is the point: the pool's contract is that scheduling
never feeds back into results, so every (status, metrics, violations)
triple must be **bit-identical** across the two runs; any mismatch
makes :func:`main` exit non-zero.

Speedup itself is reported, not gated — on a single hardware thread the
CPU-bound trials cannot overlap, and hosted-runner wall clocks are too
noisy for absolute gating (the same reasoning as the bench harness; see
docs/PERFORMANCE.md).  The retry-protocol speedup *assertion* lives in
``tests/perf/test_campaign_scaling.py``.

Like the rest of ``repro.perf``, this module is host-side measurement:
the wall-clock reads are intentional and marked for simlint.

Usage::

    PYTHONPATH=src python -m repro.perf.campaign_scaling \
        --trial 3 --seeds 8 --jobs 4 --duration 3
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional, Sequence

from repro.core.trials import TRIAL_1, TRIAL_2, TRIAL_3, TrialConfig
from repro.experiments.campaign import (
    CampaignResult,
    campaign_trials,
    run_campaign,
)

SCHEMA = "repro.campaign-scaling/1"

_TRIALS = {1: TRIAL_1, 2: TRIAL_2, 3: TRIAL_3}


def _comparable(outcome) -> str:
    """The scheduling-independent fields of one record, canonically.

    ``elapsed`` is wall clock and legitimately differs run to run;
    everything else must not.  The comparison happens on serialized
    JSON: float equality is then bit-exact (shortest round-trip repr)
    while a NaN metric — e.g. ``initial_packet_delay`` of a trial whose
    warning never fired — still compares equal to itself, which Python's
    ``==`` on the raw dicts would not.
    """
    return json.dumps(
        {
            "key": outcome.key,
            "status": outcome.status,
            "metrics": outcome.metrics,
            "error": outcome.error,
            "violations": outcome.violations,
            "trace": outcome.trace,
        },
        sort_keys=True,
    )


def compare_outcomes(
    sequential: CampaignResult, parallel: CampaignResult
) -> list[str]:
    """Keys whose records differ between the two runs (empty == identical)."""
    mismatches = []
    for seq, par in zip(sequential.outcomes, parallel.outcomes):
        if _comparable(seq) != _comparable(par):
            mismatches.append(seq.key)
    return mismatches


def measure_campaign_scaling(
    base: TrialConfig,
    seeds: int = 8,
    jobs: int = 4,
    timeout: float = 120.0,
) -> dict:
    """Time the same ``seeds``-trial campaign at ``jobs=1`` and ``jobs=N``."""
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    trials = campaign_trials(base, seeds=range(1, seeds + 1))

    def timed(n_jobs: int) -> tuple[CampaignResult, float]:
        start = time.perf_counter()  # simlint: disable=SIM002
        result = run_campaign(trials, timeout=timeout, jobs=n_jobs)
        return result, time.perf_counter() - start  # simlint: disable=SIM002

    sequential, wall_sequential = timed(1)
    parallel, wall_parallel = timed(jobs)
    mismatches = compare_outcomes(sequential, parallel)
    statuses: dict[str, int] = {}
    for outcome in parallel.outcomes:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
    return {
        "schema": SCHEMA,
        "trial": base.name,
        "duration": base.duration,
        "seeds": seeds,
        "jobs": jobs,
        "wall_sequential_s": wall_sequential,
        "wall_parallel_s": wall_parallel,
        "speedup": (
            wall_sequential / wall_parallel if wall_parallel > 0 else 0.0
        ),
        "identical": not mismatches,
        "mismatches": mismatches,
        "statuses": statuses,
    }


def format_report(report: dict) -> str:
    lines = [
        f"campaign scaling: {report['seeds']} seeds of {report['trial']} "
        f"({report['duration']:g}s sim each)",
        f"  jobs=1              {report['wall_sequential_s']:8.2f}s wall",
        f"  jobs={report['jobs']:<3d}            {report['wall_parallel_s']:8.2f}s wall"
        f"  ({report['speedup']:.2f}x)",
        "  per-trial records: "
        + (
            "bit-identical across both runs"
            if report["identical"]
            else "MISMATCH on " + ", ".join(report["mismatches"])
        ),
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="campaign worker-pool scaling bench"
    )
    parser.add_argument("--trial", type=int, choices=(1, 2, 3), default=3)
    parser.add_argument("--seeds", type=int, default=8,
                        help="run seeds 1..N twice (default 8)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="pool width of the parallel arm (default 4)")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="simulated seconds per trial (default 3)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-trial watchdog (default 120)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    base = _TRIALS[args.trial].with_overrides(duration=args.duration)
    report = measure_campaign_scaling(
        base, seeds=args.seeds, jobs=args.jobs, timeout=args.timeout
    )
    print(format_report(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2)
            stream.write("\n")
        print(f"scaling report written to {args.output}")
    # Differing records mean the pool broke determinism — that gates.
    return 0 if report["identical"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
