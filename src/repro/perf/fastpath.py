"""The fast-path feature gate.

Every profile-guided optimization in the simulator (``__slots__`` layouts,
the inlined event loop, link-budget caching in the channel, trampoline
delivery events, compiled header copiers) is keyed off one flag read here
at import time.  Setting ``REPRO_NO_FASTPATH=1`` in the environment before
importing :mod:`repro` switches every layer back to its straight-line
reference implementation.

The two modes are required to be observably identical: fixed-seed runs
must produce bit-identical packet event traces and metric summaries in
both.  ``tests/perf/test_differential.py`` enforces this by running the
same seeded scenario in a ``REPRO_NO_FASTPATH=1`` subprocess and comparing
digests, so a fast-path change that alters physics cannot land silently.

The flag is module-level (not per-call) on purpose: the optimizations
change class layouts and bound methods, which can only be decided once,
when the classes are defined.
"""

from __future__ import annotations

import os

_FALSEY = ("", "0", "false", "no", "off")


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_FASTPATH", "").strip().lower() not in _FALSEY


#: True when the optimized code paths are active (the default).
FASTPATH: bool = not _disabled_by_env()


def fastpath_enabled() -> bool:
    """Whether this process runs the optimized paths (for bench metadata)."""
    return FASTPATH
