"""Wall-clock benchmark harness behind ``ebl-sim bench`` / ``make bench``.

Runs the paper's canonical Trial 1-3 configurations under
``time.perf_counter``, recording for each trial:

* best-of-N wall-clock seconds (minimum is the standard noise filter),
* kernel events processed and events/second,
* channel transmissions (packets offered) and packets/second,
* process peak RSS.

Reports are schema-versioned JSON (``repro-bench/v1``) so a checked-in
baseline stays comparable across harness changes, and
:func:`compare_reports` turns two reports into a list of regressions —
the CLI exits non-zero when any trial slowed down by more than the
threshold (15% by default), which is what the CI bench step gates on.

Timestamps are deliberately absent: two benches of the same tree must
produce byte-identical JSON apart from the measured numbers.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Iterable, Optional

from repro.core.runner import run_trial
from repro.core.trials import TRIAL_1, TRIAL_2, TRIAL_3, TrialConfig
from repro.obs.config import ObservabilityConfig
from repro.perf.fastpath import fastpath_enabled
from repro.sanitizer.config import SanitizerConfig

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Report schema identifier; bump when the JSON layout changes.
SCHEMA = "repro-bench/v1"

#: Trials benched, keyed by the name used in the report.
BENCH_TRIALS: dict[str, TrialConfig] = {
    "trial1": TRIAL_1,
    "trial2": TRIAL_2,
    "trial3": TRIAL_3,
}

#: Named profiles: ``smoke`` keeps CI fast, ``paper`` uses the paper's
#: trial durations (trial 3 shortened — 802.11 contention makes it the
#: slowest by far and 20 s already yields stable rates).
PROFILES: dict[str, dict[str, Any]] = {
    "smoke": {
        "repeats": 1,
        "durations": {"trial1": 6.0, "trial2": 6.0, "trial3": 4.0},
    },
    "paper": {
        "repeats": 3,
        "durations": {"trial1": 60.0, "trial2": 60.0, "trial3": 20.0},
    },
}

#: Relative slowdown tolerated before ``--compare`` fails.
DEFAULT_THRESHOLD = 0.15


def _peak_rss_kb() -> Optional[int]:
    """Process high-water RSS in KiB (None where unsupported)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return peak


def bench_trial(
    config: TrialConfig,
    duration: float,
    repeats: int,
    observe: bool = False,
    sanitize: bool = False,
    trace: bool = False,
    profile_wall: bool = False,
) -> dict[str, Any]:
    """Benchmark one trial config, returning its report entry.

    With ``observe`` the benched runs carry the full metric registry and
    journey tracker, so the entry additionally reports the compact metric
    snapshot — and the measured wall clock *includes* the observability
    overhead (the <10% bench guard measures exactly this).  ``sanitize``
    does the same for the runtime sanitizer: the wall clock includes the
    invariant-checking overhead, and the entry reports the violation
    count (which must be zero on the canonical trials).  ``trace`` runs
    with the causal span tracer recording — the entry reports the span
    count, and its wall clock is what the <10% tracing-overhead gate
    compares against an untraced run.  ``profile_wall`` attributes host
    time per component; the entry carries the hottest collapsed stacks
    (``profile_top``) and the full flamegraph lines (``collapsed``).
    """
    observability = None
    if observe or trace or profile_wall:
        observability = ObservabilityConfig(
            metrics=observe,
            journeys=observe,
            tracing=trace,
            profile_wall=profile_wall,
        )
    cfg = config.with_overrides(
        duration=duration,
        enable_trace=False,
        observability=observability,
        sanitize=SanitizerConfig() if sanitize else None,
    )
    best_wall = float("inf")
    events = 0
    packets = 0
    metrics: dict[str, float] = {}
    violations = 0
    spans = 0
    spans_dropped = 0
    collapsed: list[str] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()  # simlint: disable=SIM002
        result = run_trial(cfg)
        wall = time.perf_counter() - start  # simlint: disable=SIM002
        if wall < best_wall:
            best_wall = wall
            scenario = result.scenario
            events = scenario.env.events_processed if scenario else 0
            packets = scenario.channel.transmissions if scenario else 0
            obs = result.observability
            if obs is not None and obs.registry is not None:
                metrics = obs.registry.compact()
            if obs is not None and obs.spans is not None:
                spans = len(obs.spans)
                spans_dropped = obs.spans.dropped
            if obs is not None and obs.profiler is not None:
                collapsed = obs.profiler.collapsed_stacks()
            report = result.sanitizer_report
            if report is not None:
                violations = len(report) + report.overflow
    entry = {
        "duration_s": duration,
        "repeats": max(1, repeats),
        "wall_s": best_wall,
        "events": events,
        "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        "packets": packets,
        "packets_per_sec": packets / best_wall if best_wall > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
    }
    if observe:
        entry["metrics"] = metrics
    if sanitize:
        entry["violations"] = violations
    if trace:
        entry["spans"] = spans
        entry["spans_dropped"] = spans_dropped
    if profile_wall:
        entry["profile_top"] = collapsed[:10]
        entry["collapsed"] = collapsed
    return entry


def run_bench(
    profile: str = "paper",
    repeats: Optional[int] = None,
    duration: Optional[float] = None,
    trials: Optional[Iterable[str]] = None,
    observe: bool = False,
    sanitize: bool = False,
    trace: bool = False,
    profile_wall: bool = False,
) -> dict[str, Any]:
    """Run the bench suite and return the full report dict."""
    if profile not in PROFILES:
        raise ValueError(f"unknown bench profile {profile!r}")
    settings = PROFILES[profile]
    names = list(trials) if trials is not None else list(BENCH_TRIALS)
    unknown = [n for n in names if n not in BENCH_TRIALS]
    if unknown:
        raise ValueError(f"unknown bench trials: {unknown}")
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "profile": profile,
        "fastpath": fastpath_enabled(),
        "observability": observe,
        "sanitizer": sanitize,
        "tracing": trace,
        "profile_wall": profile_wall,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "trials": {},
    }
    for name in names:
        report["trials"][name] = bench_trial(
            BENCH_TRIALS[name],
            duration if duration is not None else settings["durations"][name],
            repeats if repeats is not None else settings["repeats"],
            observe=observe,
            sanitize=sanitize,
            trace=trace,
            profile_wall=profile_wall,
        )
    return report


def write_report(report: dict[str, Any], path: str) -> None:
    """Write ``report`` as stable, human-diffable JSON."""
    with open(path, "w") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")


def load_report(path: str) -> dict[str, Any]:
    """Load a report, rejecting unknown schema versions."""
    with open(path) as stream:
        report = json.load(stream)
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} (expected {SCHEMA!r})"
        )
    return report


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Regression messages for trials slower than ``baseline`` by > threshold.

    A trial regresses when wall-clock grew or events/sec shrank by more
    than ``threshold`` relative to the baseline.  Trials present in only
    one report are ignored (profiles may differ in coverage).
    """
    regressions: list[str] = []
    for name, base in sorted(baseline.get("trials", {}).items()):
        cur = current.get("trials", {}).get(name)
        if cur is None:
            continue
        base_wall = base.get("wall_s")
        cur_wall = cur.get("wall_s")
        if base_wall and cur_wall and cur_wall > base_wall * (1 + threshold):
            regressions.append(
                f"{name}: wall {cur_wall:.3f}s vs baseline {base_wall:.3f}s "
                f"(+{100 * (cur_wall / base_wall - 1):.1f}% > "
                f"{100 * threshold:.0f}%)"
            )
        base_eps = base.get("events_per_sec")
        cur_eps = cur.get("events_per_sec")
        if base_eps and cur_eps and cur_eps < base_eps / (1 + threshold):
            regressions.append(
                f"{name}: {cur_eps:,.0f} events/s vs baseline "
                f"{base_eps:,.0f} "
                f"(-{100 * (1 - cur_eps / base_eps):.1f}% > "
                f"{100 * threshold:.0f}%)"
            )
    return regressions


def format_report(report: dict[str, Any]) -> str:
    """Human-readable table of a bench report."""
    lines = [
        f"bench profile={report['profile']} "
        f"fastpath={'on' if report['fastpath'] else 'off'} "
        f"obs={'on' if report.get('observability') else 'off'} "
        f"trace={'on' if report.get('tracing') else 'off'} "
        f"python={report['python']}",
        f"{'trial':>8} {'sim s':>7} {'wall s':>8} {'events/s':>12} "
        f"{'packets/s':>10} {'rss MB':>7}",
    ]
    for name, entry in sorted(report["trials"].items()):
        rss = entry.get("peak_rss_kb")
        lines.append(
            f"{name:>8} {entry['duration_s']:7.1f} {entry['wall_s']:8.3f} "
            f"{entry['events_per_sec']:12,.0f} "
            f"{entry['packets_per_sec']:10,.0f} "
            f"{(rss / 1024 if rss else 0):7.1f}"
        )
    return "\n".join(lines)
