"""UDP agent and sink."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.headers import IpHeader, UdpHeader
from repro.net.packet import Packet, PacketType
from repro.transport.agents import Agent

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass
class ReceivedRecord:
    """One packet observed at a sink (shared by UDP and TCP sinks)."""

    seqno: int
    size: int
    sent_at: float
    received_at: float

    @property
    def delay(self) -> float:
        """One-way delay of this packet, seconds."""
        return self.received_at - self.sent_at


class UdpAgent(Agent):
    """Connectionless datagram sender/receiver."""

    def __init__(self, node: "Node", local_port: int) -> None:
        super().__init__(node, local_port)
        self._seqno = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        #: Optional upcall for received datagrams: fn(pkt).
        self.recv_callback: Optional[Callable[[Packet], None]] = None

    def send(
        self,
        payload: int,
        headers: Optional[dict[str, Any]] = None,
        ptype: PacketType = PacketType.CBR,
        dst: Optional[int] = None,
        dport: Optional[int] = None,
    ) -> Packet:
        """Send ``payload`` application bytes to the connected remote.

        ``dst``/``dport`` (given together) override the connected remote
        for this one datagram — e.g. a unicast reply to the sender of a
        broadcast.
        """
        if (dst is None) != (dport is None):
            raise ValueError("give both dst and dport, or neither")
        if dst is None:
            self._require_connected()
        if payload <= 0:
            raise ValueError("payload must be positive")
        header = UdpHeader(seqno=self._seqno, payload=payload)
        self._seqno += 1
        pkt = Packet(
            ptype=ptype,
            size=payload + UdpHeader.WIRE_SIZE + IpHeader.WIRE_SIZE,
            ip=IpHeader(
                src=self.address,
                dst=self.remote_addr if dst is None else dst,
                sport=self.local_port,
                dport=self.remote_port if dport is None else dport,
            ),
            headers={"udp": header, **(headers or {})},
            timestamp=self.env.now,
        )
        self.bytes_sent += pkt.size
        self.packets_sent += 1
        self.node.send(pkt)
        return pkt

    def receive(self, pkt: Packet) -> None:
        if self.recv_callback is not None:
            self.recv_callback(pkt)


class UdpSink(Agent):
    """Datagram receiver that records arrivals for analysis."""

    def __init__(self, node: "Node", local_port: int) -> None:
        super().__init__(node, local_port)
        self.bytes = 0
        self.packets = 0
        self.records: list[ReceivedRecord] = []
        self.recv_callback: Optional[Callable[[Packet], None]] = None

    def receive(self, pkt: Packet) -> None:
        header = pkt.headers.get("udp")
        seqno = header.seqno if header is not None else self.packets
        self.bytes += pkt.size
        self.packets += 1
        self.records.append(
            ReceivedRecord(
                seqno=seqno,
                size=pkt.size,
                sent_at=pkt.timestamp,
                received_at=self.env.now,
            )
        )
        if self.recv_callback is not None:
            self.recv_callback(pkt)
