"""Traffic applications driving transport agents."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.obs import api as obs
from repro.transport.tcp import TcpAgent
from repro.transport.udp import UdpAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class FtpApp:
    """Infinite-backlog file transfer over TCP (ns-2 ``Application/FTP``)."""

    def __init__(self, agent: TcpAgent) -> None:
        self.agent = agent
        self.env = agent.env
        self.started = False

    def start(self, at: float = 0.0) -> None:
        """Begin the transfer at simulated time ``at``."""
        self.env.process(self._run(at))

    def _run(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self.started = True
        self.agent.resume()
        self.agent.send_forever()


class CbrApp:
    """Constant-bit-rate generator over UDP or TCP.

    Over UDP each tick emits one datagram; over TCP each tick queues one
    packet's worth of bytes on the agent (matching ns-2's
    ``Application/Traffic/CBR`` attached to a TCP agent — the paper's
    "packets are sent at a constant bit rate" behaviour).
    """

    def __init__(
        self,
        agent: Union[UdpAgent, TcpAgent],
        packet_size: int = 1000,
        interval: Optional[float] = None,
        rate_bps: Optional[float] = None,
    ) -> None:
        if (interval is None) == (rate_bps is None):
            raise ValueError("specify exactly one of interval or rate_bps")
        if interval is None:
            interval = packet_size * 8.0 / rate_bps
        if interval <= 0:
            raise ValueError("interval must be positive")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.agent = agent
        self.env = agent.env
        self.packet_size = packet_size
        self.interval = interval
        self.packets_generated = 0
        self._obs_packets = obs.counter("app.cbr.packets")
        self._running = False
        self._stop_at: Optional[float] = None

    def start(self, at: float = 0.0, stop: Optional[float] = None) -> None:
        """Generate packets from ``at`` until ``stop`` (None = forever)."""
        self._stop_at = stop
        self.env.process(self._run(at))

    def stop(self) -> None:
        """Stop the generator at the current time."""
        self._running = False

    def _run(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self._running = True
        while self._running:
            if self._stop_at is not None and self.env.now >= self._stop_at:
                break
            self._emit()
            yield self.env.timeout(self.interval)

    def _emit(self) -> None:
        self.packets_generated += 1
        self._obs_packets.inc()
        if isinstance(self.agent, TcpAgent):
            self.agent.send_bytes(self.packet_size)
        else:
            self.agent.send(self.packet_size)


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff for application-level retransmission.

    Attempt ``n`` (0-based) fires ``initial_interval * multiplier**n``
    after the previous one, capped at ``max_interval``; after
    ``max_attempts`` sends the sender gives up (graceful degradation, not
    an infinite retry storm on a dead network).
    """

    initial_interval: float = 0.1
    multiplier: float = 2.0
    max_interval: float = 2.0
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.initial_interval <= 0:
            raise ValueError("initial_interval must be positive")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_interval < self.initial_interval:
            raise ValueError("max_interval must be >= initial_interval")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def interval(self, attempt: int) -> float:
        """Delay after 0-based send ``attempt`` before the next one."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(
            self.initial_interval * self.multiplier**attempt,
            self.max_interval,
        )


class RetryingSender:
    """Repeats an unreliable send until acknowledged, per a backoff policy.

    ``send_fn`` is invoked once per attempt; :meth:`acknowledge` stops the
    retries (delivery confirmed), :meth:`cancel` abandons them (the
    message is moot — e.g. the brakes released).  One instance serves one
    message; make a new one per message.
    """

    def __init__(
        self,
        env: "Environment",
        send_fn: Callable[[int], None],
        policy: Optional[BackoffPolicy] = None,
    ) -> None:
        self.env = env
        self.send_fn = send_fn
        self.policy = policy or BackoffPolicy()
        self.attempts = 0
        self._obs_attempts = obs.counter("app.retry.attempts")
        self.acknowledged = False
        self.cancelled = False
        self.exhausted = False
        self._started = False

    @property
    def done(self) -> bool:
        """True once the retry loop has stopped, for whatever reason."""
        return self.acknowledged or self.cancelled or self.exhausted

    def start(self) -> None:
        """Send the first attempt now and begin the retry loop."""
        if self._started:
            raise RuntimeError("RetryingSender already started")
        self._started = True
        self.env.process(self._run())

    def acknowledge(self) -> None:
        """Delivery confirmed: stop retrying."""
        if not self.done:
            self.acknowledged = True

    def cancel(self) -> None:
        """Message no longer relevant: stop retrying."""
        if not self.done:
            self.cancelled = True

    def _run(self):
        while not self.done:
            self.send_fn(self.attempts)
            self.attempts += 1
            self._obs_attempts.inc()
            # Wait out the backoff even after the last attempt, so a
            # late acknowledgement still lands before we declare defeat.
            yield self.env.timeout(self.policy.interval(self.attempts - 1))
            if self.attempts >= self.policy.max_attempts:
                break
        if not self.acknowledged and not self.cancelled:
            self.exhausted = True


class OnOffApp:
    """Exponential/deterministic on-off traffic over UDP (extension)."""

    def __init__(
        self,
        agent: UdpAgent,
        packet_size: int = 512,
        interval: float = 0.01,
        on_time: float = 1.0,
        off_time: float = 1.0,
    ) -> None:
        for name, value in (
            ("packet_size", packet_size),
            ("interval", interval),
            ("on_time", on_time),
            ("off_time", off_time),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive")
        self.agent = agent
        self.env = agent.env
        self.packet_size = packet_size
        self.interval = interval
        self.on_time = on_time
        self.off_time = off_time
        self.packets_generated = 0
        self._running = False

    def start(self, at: float = 0.0) -> None:
        """Begin alternating on/off bursts at time ``at``."""
        self.env.process(self._run(at))

    def stop(self) -> None:
        """Halt the generator permanently."""
        self._running = False

    def _run(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self._running = True
        while self._running:
            burst_end = self.env.now + self.on_time
            while self._running and self.env.now < burst_end:
                self.agent.send(self.packet_size)
                self.packets_generated += 1
                yield self.env.timeout(self.interval)
            yield self.env.timeout(self.off_time)
