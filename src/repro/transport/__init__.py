"""Transport agents (TCP/UDP) and traffic applications (FTP/CBR)."""

from repro.transport.agents import Agent
from repro.transport.apps import CbrApp, FtpApp, OnOffApp
from repro.transport.tcp import (
    TCP_VARIANTS,
    TcpAgent,
    TcpNewReno,
    TcpParams,
    TcpSink,
    TcpTahoe,
)
from repro.transport.udp import UdpAgent, UdpSink

__all__ = [
    "Agent",
    "CbrApp",
    "FtpApp",
    "OnOffApp",
    "TCP_VARIANTS",
    "TcpAgent",
    "TcpNewReno",
    "TcpParams",
    "TcpSink",
    "TcpTahoe",
    "UdpAgent",
    "UdpSink",
]
