"""Transport agent base class."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Address
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


class Agent:
    """A transport endpoint bound to a node and local port.

    Mirrors ns-2's ``Agent``: it knows its node, its local port, and —
    once :meth:`connect` has been called — the remote (address, port) it
    exchanges packets with.
    """

    def __init__(self, node: "Node", local_port: int) -> None:
        self.node = node
        self.env = node.env
        self.local_port = local_port
        self.remote_addr: Optional[Address] = None
        self.remote_port: Optional[int] = None
        node.add_agent(local_port, self)

    @property
    def address(self) -> Address:
        """The owning node's address."""
        return self.node.address

    @property
    def connected(self) -> bool:
        """True once :meth:`connect` has fixed the remote endpoint."""
        return self.remote_addr is not None

    def connect(self, remote_addr: Address, remote_port: int) -> None:
        """Bind the remote endpoint (like ns-2's ``$ns connect``)."""
        self.remote_addr = remote_addr
        self.remote_port = remote_port

    def _require_connected(self) -> None:
        if not self.connected:
            raise RuntimeError(
                f"agent on node {self.address}:{self.local_port} is not connected"
            )

    def receive(self, pkt: Packet) -> None:
        """Handle a packet delivered to this agent's port."""
        raise NotImplementedError
