"""One-way TCP in the ns-2 style: ``Agent/TCP`` sender, ``Agent/TCPSink``.

Sequence numbers count *segments*; the sink acknowledges the highest
in-order segment received; the sender runs slow start, congestion
avoidance, fast retransmit/fast recovery (Reno), and an RFC 6298-style
retransmission timer with Karn's algorithm and exponential backoff.

This is exactly the machinery whose "overhead associated with the TCP and
TDMA protocols" the paper identifies as the dominant delay source in
trials 1 and 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.headers import IpHeader, TcpHeader
from repro.net.packet import Packet, PacketType
from repro.obs import api as obs
from repro.sanitizer import api as san
from repro.transport.agents import Agent
from repro.transport.udp import ReceivedRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


@dataclass
class TcpParams:
    """Sender constants (ns-2 defaults where applicable)."""

    #: Application payload bytes per segment (ns-2 ``packetSize_``).
    segment_size: int = 1000
    #: Maximum window in segments (ns-2 ``window_``).
    window: int = 20
    #: Initial congestion window, segments.
    initial_cwnd: float = 1.0
    #: Initial slow-start threshold, segments.
    initial_ssthresh: float = 64.0
    #: Duplicate ACKs that trigger fast retransmit.
    dupack_threshold: int = 3
    #: Retransmission-timer bounds, seconds.
    initial_rto: float = 3.0
    min_rto: float = 0.2
    max_rto: float = 60.0


class TcpAgent(Agent):
    """Reno TCP sender."""

    def __init__(
        self,
        node: "Node",
        local_port: int,
        params: Optional[TcpParams] = None,
    ) -> None:
        super().__init__(node, local_port)
        self.params = params or TcpParams()
        # Window state (segments).
        self.cwnd = self.params.initial_cwnd
        self.ssthresh = self.params.initial_ssthresh
        self.t_seqno = 0  # next segment to send
        self.highest_ack = -1
        self.dupacks = 0
        self._in_recovery = False
        self._recover = -1
        # Application backlog (segments); None means unlimited (FTP).
        self._segments_requested: Optional[int] = 0
        self._pending_bytes = 0
        # RTT estimation.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.params.initial_rto
        self._rtt_seq: Optional[int] = None
        self._rtt_ts = 0.0
        # Retransmission timer.
        self._timer_generation = 0
        self._timer_running = False
        # Statistics.
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.bytes_sent = 0
        self._obs_sent = obs.counter("tcp.segments.sent")
        self._obs_retx = obs.counter("tcp.retransmits")
        self._obs_timeouts = obs.counter("tcp.timeouts")
        self._obs_rtt = obs.histogram("tcp.rtt")
        self._san = san.tcp_monitor()
        #: True while the application allows transmission (start/stop gate).
        self.running = True

    # -- application interface --------------------------------------------------

    def send_forever(self) -> None:
        """Give the sender an infinite backlog (FTP semantics)."""
        self._require_connected()
        self._segments_requested = None
        self._try_send()

    def send_bytes(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data (ns-2 ``sendmsg``)."""
        self._require_connected()
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self._segments_requested is None:
            return  # already unlimited
        self._pending_bytes += nbytes
        whole, self._pending_bytes = divmod(
            self._pending_bytes, self.params.segment_size
        )
        self._segments_requested += whole
        self._try_send()

    def send_segments(self, count: int) -> None:
        """Queue ``count`` whole segments."""
        self._require_connected()
        if count <= 0:
            raise ValueError("count must be positive")
        if self._segments_requested is not None:
            self._segments_requested += count
            self._try_send()

    def pause(self) -> None:
        """Stop transmitting (the EBL app pauses when not braking)."""
        self.running = False

    def resume(self) -> None:
        """Resume transmitting."""
        self.running = True
        self._try_send()

    # -- window engine ---------------------------------------------------------------

    @property
    def effective_window(self) -> int:
        """min(cwnd, receiver window), whole segments."""
        return max(1, int(min(self.cwnd, float(self.params.window))))

    def _app_limit(self) -> float:
        if self._segments_requested is None:
            return math.inf
        return float(self._segments_requested)

    def _try_send(self) -> None:
        if not self.running or not self.connected:
            return
        limit = self._app_limit()
        while (
            self.t_seqno - (self.highest_ack + 1) < self.effective_window
            and self.t_seqno < limit
        ):
            self._output(self.t_seqno)
            self.t_seqno += 1

    def _output(self, seqno: int, retransmit: bool = False) -> None:
        now = self.env.now
        header = TcpHeader(seqno=seqno, payload=self.params.segment_size)
        pkt = Packet(
            ptype=PacketType.TCP,
            size=self.params.segment_size
            + TcpHeader.WIRE_SIZE
            + IpHeader.WIRE_SIZE,
            ip=IpHeader(
                src=self.address,
                dst=self.remote_addr,
                sport=self.local_port,
                dport=self.remote_port,
            ),
            headers={"tcp": header},
            timestamp=now,
        )
        pkt.meta["retransmit"] = retransmit
        self.segments_sent += 1
        self._obs_sent.inc()
        self.bytes_sent += pkt.size
        if retransmit:
            self.retransmits += 1
            self._obs_retx.inc()
            if self._rtt_seq == seqno:
                self._rtt_seq = None  # Karn: never time a retransmission
        elif self._rtt_seq is None:
            self._rtt_seq = seqno
            self._rtt_ts = now
        if not self._timer_running:
            self._start_timer()
        self._san.on_segment_sent(self, seqno)
        self.node.send(pkt)

    # -- ACK processing ------------------------------------------------------------------

    def receive(self, pkt: Packet) -> None:
        header: TcpHeader = pkt.header("tcp")
        if not header.is_ack:
            return  # a one-way sender ignores stray data
        ackno = header.ackno
        self._san.on_ack(self, ackno)
        if ackno > self.highest_ack:
            self._new_ack(ackno)
        elif ackno == self.highest_ack:
            self._dup_ack()

    def _new_ack(self, ackno: int) -> None:
        params = self.params
        if self._in_recovery:
            # Reno: any new ACK ends recovery, deflating to ssthresh.
            self._in_recovery = False
            self.cwnd = self.ssthresh
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, float(params.window))
        if self._rtt_seq is not None and ackno >= self._rtt_seq:
            self._rtt_sample(self.env.now - self._rtt_ts)
            self._rtt_seq = None
        self.highest_ack = ackno
        self.dupacks = 0
        if self.t_seqno > self.highest_ack + 1:
            self._start_timer()  # data still outstanding
        else:
            self._stop_timer()
        self._try_send()

    def _dup_ack(self) -> None:
        self.dupacks += 1
        if self._in_recovery:
            self.cwnd += 1.0  # window inflation per extra dupack
            self._try_send()
            return
        if self.dupacks == self.params.dupack_threshold:
            # Fast retransmit + fast recovery.
            self.ssthresh = max(self.effective_window / 2.0, 2.0)
            self._in_recovery = True
            self._recover = self.t_seqno - 1
            self._output(self.highest_ack + 1, retransmit=True)
            self.cwnd = self.ssthresh + self.params.dupack_threshold
            self._start_timer()

    # -- RTT estimation --------------------------------------------------------------------

    def _rtt_sample(self, sample: float) -> None:
        self._obs_rtt.observe(sample)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self._clamp_rto(self.srtt + 4.0 * self.rttvar)

    def _clamp_rto(self, rto: float) -> float:
        return min(max(rto, self.params.min_rto), self.params.max_rto)

    # -- retransmission timer -------------------------------------------------------------------

    def _start_timer(self) -> None:
        self._timer_generation += 1
        self._timer_running = True
        self.env.process(self._timer(self._timer_generation))

    def _stop_timer(self) -> None:
        self._timer_generation += 1
        self._timer_running = False

    def _timer(self, generation: int):
        yield self.env.timeout(self.rto)
        if generation != self._timer_generation:
            return
        self._timer_running = False
        self._timeout()

    def _timeout(self) -> None:
        self.timeouts += 1
        self._obs_timeouts.inc()
        self.ssthresh = max(self.effective_window / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self._in_recovery = False
        self.rto = self._clamp_rto(self.rto * 2.0)
        self._rtt_seq = None
        # Go-back-N from the first unacknowledged segment (ns-2 behaviour).
        self.t_seqno = self.highest_ack + 1
        if self.running and self.t_seqno < self._app_limit():
            self._output(self.t_seqno, retransmit=True)
            self.t_seqno += 1


class TcpTahoe(TcpAgent):
    """Tahoe: fast retransmit but no fast recovery.

    On the third duplicate ACK the lost segment is retransmitted and the
    sender falls all the way back to slow start (cwnd = 1), exactly like
    an RTO but without waiting for the timer.
    """

    def _dup_ack(self) -> None:
        self.dupacks += 1
        if self.dupacks == self.params.dupack_threshold:
            self.ssthresh = max(self.effective_window / 2.0, 2.0)
            self.cwnd = 1.0
            self.dupacks = 0
            self._rtt_seq = None  # Karn
            # Go-back-N from the hole, as a timeout would.
            self.t_seqno = self.highest_ack + 1
            self._output(self.t_seqno, retransmit=True)
            self.t_seqno += 1
            self._start_timer()


class TcpNewReno(TcpAgent):
    """NewReno: fast recovery that survives multiple losses per window.

    A *partial* ACK (new data acknowledged, but short of ``recover``)
    indicates another hole in the same window: the hole is retransmitted
    immediately and recovery continues, instead of Reno's premature exit
    (RFC 6582).
    """

    def _new_ack(self, ackno: int) -> None:
        if self._in_recovery and ackno < self._recover:
            delta = ackno - self.highest_ack
            self.highest_ack = ackno
            self.dupacks = 0
            # Partial window deflation, plus one for the retransmission.
            self.cwnd = max(self.cwnd - delta + 1.0, 1.0)
            self._output(ackno + 1, retransmit=True)
            if self.t_seqno < ackno + 2:
                self.t_seqno = ackno + 2
            self._start_timer()
            self._try_send()
            return
        super()._new_ack(ackno)


#: Registry of selectable sender variants.
TCP_VARIANTS = {
    "reno": TcpAgent,
    "tahoe": TcpTahoe,
    "newreno": TcpNewReno,
}


class TcpSink(Agent):
    """Receiver: acknowledges the highest in-order segment (ns-2 TCPSink).

    ``bytes`` mirrors ns-2's ``bytes_`` sampled by the paper's Tcl
    ``record`` procedure (Fig. 4): it counts every received data byte.
    """

    def __init__(
        self,
        node: "Node",
        local_port: int,
        delayed_ack: float = 0.0,
    ) -> None:
        super().__init__(node, local_port)
        if delayed_ack < 0:
            raise ValueError("delayed_ack must be non-negative")
        self.delayed_ack = delayed_ack
        self.next_expected = 0
        self.bytes = 0
        self.packets = 0
        self.duplicates = 0
        self.acks_sent = 0
        self.records: list[ReceivedRecord] = []
        self._out_of_order: set[int] = set()
        self._ack_pending = False
        self._san = san.tcp_monitor()

    def receive(self, pkt: Packet) -> None:
        header: TcpHeader = pkt.header("tcp")
        if header.is_ack:
            return
        seqno = header.seqno
        self.bytes += pkt.size
        self.packets += 1
        is_new = seqno >= self.next_expected and seqno not in self._out_of_order
        if is_new:
            self.records.append(
                ReceivedRecord(
                    seqno=seqno,
                    size=pkt.size,
                    sent_at=pkt.timestamp,
                    received_at=self.env.now,
                )
            )
            if seqno == self.next_expected:
                self.next_expected += 1
                while self.next_expected in self._out_of_order:
                    self._out_of_order.discard(self.next_expected)
                    self.next_expected += 1
            else:
                self._out_of_order.add(seqno)
        else:
            self.duplicates += 1
        self._san.on_sink(self)
        if self.delayed_ack > 0 and seqno == self.next_expected - 1:
            if not self._ack_pending:
                self._ack_pending = True
                self.env.process(self._delayed_ack())
        else:
            self._send_ack()

    def _delayed_ack(self):
        yield self.env.timeout(self.delayed_ack)
        if self._ack_pending:
            self._ack_pending = False
            self._send_ack()

    def _send_ack(self) -> None:
        self._require_connected()
        header = TcpHeader(
            ackno=self.next_expected - 1, is_ack=True, payload=0
        )
        pkt = Packet(
            ptype=PacketType.ACK,
            size=TcpHeader.WIRE_SIZE + IpHeader.WIRE_SIZE,
            ip=IpHeader(
                src=self.address,
                dst=self.remote_addr,
                sport=self.local_port,
                dport=self.remote_port,
            ),
            headers={"tcp": header},
            timestamp=self.env.now,
        )
        self.acks_sent += 1
        self.node.send(pkt)

    @property
    def delivered_segments(self) -> int:
        """Segments delivered in order so far."""
        return self.next_expected
