"""The paper's tabulated statistics, as structured rows.

§III.B-D report, per trial: avg/min/max one-way delay for the middle and
trailing vehicles of each platoon, avg/min/max throughput, and the 95%
confidence analysis.  §III.E tabulates the stopping-distance assessment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import analyze_trial
from repro.core.runner import TrialResult
from repro.core.safety import assess_safety

#: Human names for follower indices (platoons of three).
FOLLOWER_NAMES = {1: "middle", 2: "trailing"}


@dataclass(frozen=True)
class DelayStatsRow:
    """One row of the per-vehicle delay table."""

    trial: str
    platoon: int
    vehicle: str
    count: int
    average: float
    minimum: float
    maximum: float


def delay_stats_table(result: TrialResult) -> list[DelayStatsRow]:
    """Per-vehicle avg/min/max one-way delay for both platoons."""
    rows = []
    for platoon_id in (1, 2):
        platoon = result.platoon(platoon_id)
        for flow in platoon.flows:
            if not len(flow.delays):
                continue
            summary = flow.delay_summary()
            rows.append(
                DelayStatsRow(
                    trial=result.config.name,
                    platoon=platoon_id,
                    vehicle=FOLLOWER_NAMES.get(
                        flow.follower_index, f"follower{flow.follower_index}"
                    ),
                    count=summary.count,
                    average=summary.average,
                    minimum=summary.minimum,
                    maximum=summary.maximum,
                )
            )
    return rows


@dataclass(frozen=True)
class ThroughputStatsRow:
    """One row of the per-platoon throughput table."""

    trial: str
    platoon: int
    average_mbps: float
    minimum_mbps: float
    maximum_mbps: float
    ci_half_width: float
    ci_level: float
    relative_precision: float


def throughput_stats_table(result: TrialResult) -> list[ThroughputStatsRow]:
    """Per-platoon throughput summary plus the 95% CI analysis."""
    rows = []
    for platoon_id in (1, 2):
        platoon = result.platoon(platoon_id)
        summary = platoon.throughput.summary()
        ci = platoon.throughput_confidence()
        rows.append(
            ThroughputStatsRow(
                trial=result.config.name,
                platoon=platoon_id,
                average_mbps=summary.average,
                minimum_mbps=summary.minimum,
                maximum_mbps=summary.maximum,
                ci_half_width=ci.half_width,
                ci_level=ci.level,
                relative_precision=ci.relative_precision,
            )
        )
    return rows


@dataclass(frozen=True)
class SafetyRow:
    """One row of the §III.E stopping-distance table."""

    trial: str
    mac_type: str
    initial_delay: float
    distance_travelled: float
    gap_fraction: float
    stopping_margin: float
    is_safe: bool


def safety_table(results: list[TrialResult]) -> list[SafetyRow]:
    """The §III.E assessment across trials."""
    rows = []
    for result in results:
        analysis = analyze_trial(result)
        safety = assess_safety(
            analysis.initial_packet_delay,
            speed=result.config.speed_mps,
            separation=result.config.spacing,
        )
        rows.append(
            SafetyRow(
                trial=result.config.name,
                mac_type=result.config.mac_type,
                initial_delay=safety.initial_delay,
                distance_travelled=safety.distance_during_delay,
                gap_fraction=safety.gap_fraction_consumed,
                stopping_margin=safety.stopping_margin,
                is_safe=safety.is_safe,
            )
        )
    return rows
