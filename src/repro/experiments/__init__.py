"""Per-figure/table reproduction harness.

Every figure and table in the paper's evaluation maps to a function
here (see DESIGN.md §4 for the index); ``benchmarks/`` wraps these in
pytest-benchmark targets, and :mod:`repro.experiments.report` renders the
paper-vs-measured record behind EXPERIMENTS.md.
"""

from repro.experiments.figures import (
    fig_1_2_platoon_movement,
    fig_5_6_trial1_delay,
    fig_7_trial1_throughput,
    fig_8_9_trial2_delay,
    fig_10_trial2_throughput,
    fig_11_14_trial3_delay,
    fig_15_trial3_throughput,
)
from repro.experiments.analytic import BianchiModel, TdmaModel
from repro.experiments.plots import (
    ascii_plot,
    render_delay_figure,
    render_throughput_figure,
)
from repro.experiments.campaign import (
    CampaignResult,
    CampaignTrial,
    TrialOutcome,
    campaign_trials,
    run_campaign,
)
from repro.experiments.replication import ReplicationResult, replicate
from repro.experiments.report import ExperimentReport, generate_report
from repro.experiments.sweeps import (
    packet_size_sweep,
    platoon_size_sweep,
    tdma_slot_ablation,
)
from repro.experiments.tables import (
    delay_stats_table,
    safety_table,
    throughput_stats_table,
)

__all__ = [
    "BianchiModel",
    "CampaignResult",
    "CampaignTrial",
    "ExperimentReport",
    "ReplicationResult",
    "TdmaModel",
    "TrialOutcome",
    "campaign_trials",
    "run_campaign",
    "ascii_plot",
    "render_delay_figure",
    "render_throughput_figure",
    "replicate",
    "delay_stats_table",
    "fig_1_2_platoon_movement",
    "fig_5_6_trial1_delay",
    "fig_7_trial1_throughput",
    "fig_8_9_trial2_delay",
    "fig_10_trial2_throughput",
    "fig_11_14_trial3_delay",
    "fig_15_trial3_throughput",
    "generate_report",
    "packet_size_sweep",
    "platoon_size_sweep",
    "safety_table",
    "tdma_slot_ablation",
    "throughput_stats_table",
]
