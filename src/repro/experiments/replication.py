"""Multi-seed replication: independent runs and cross-run confidence.

The paper draws its 95% CI from within-run throughput samples (which are
autocorrelated); the statistically stronger procedure is independent
replications with different seeds.  This module provides both, so the
difference itself can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import TrialAnalysis, analyze_trial
from repro.core.runner import run_trial
from repro.core.trials import TrialConfig
from repro.stats.confidence import ConfidenceResult, mean_confidence_interval


@dataclass
class ReplicationResult:
    """Aggregated outcome of independent replications of one config."""

    config: TrialConfig
    seeds: list[int]
    analyses: list[TrialAnalysis]
    throughput_ci: ConfidenceResult
    delay_ci: ConfidenceResult
    initial_delay_ci: ConfidenceResult

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.analyses)

    def mean_within_run_precision(self) -> float:
        """Average of the per-run (within-run) relative precisions —
        comparable with the paper's single-run CI numbers."""
        values = [a.confidence.relative_precision for a in self.analyses]
        return sum(values) / len(values)


def replicate(
    config: TrialConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    level: float = 0.95,
) -> ReplicationResult:
    """Run ``config`` once per seed and aggregate across runs."""
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for cross-run confidence")
    analyses = []
    for seed in seeds:
        run_config = config.with_overrides(
            name=f"{config.name}-seed{seed}", seed=seed, enable_trace=False
        )
        analyses.append(analyze_trial(run_trial(run_config)))
    return ReplicationResult(
        config=config,
        seeds=list(seeds),
        analyses=analyses,
        throughput_ci=mean_confidence_interval(
            [a.throughput.average for a in analyses], level=level
        ),
        delay_ci=mean_confidence_interval(
            [a.steady_state_delay for a in analyses], level=level
        ),
        initial_delay_ci=mean_confidence_interval(
            [a.initial_packet_delay for a in analyses], level=level
        ),
    )
