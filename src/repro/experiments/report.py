"""Paper-vs-measured report over every reproduced artifact.

Runs trials 1-3, evaluates the paper's shape claims S1-S7 (DESIGN.md §2),
and renders the markdown record kept in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import (
    TrialAnalysis,
    analyze_trial,
)
from repro.core.runner import TrialResult, run_trial
from repro.core.trials import TRIAL_1, TRIAL_2, TRIAL_3
from repro.experiments.tables import (
    delay_stats_table,
    safety_table,
    throughput_stats_table,
)


@dataclass
class ClaimCheck:
    """One shape claim: what the paper says, what we measured, verdict."""

    claim_id: str
    paper: str
    measured: str
    holds: bool


@dataclass
class ExperimentReport:
    """Results and claim checks across all three trials."""

    trials: dict[str, TrialResult]
    analyses: dict[str, TrialAnalysis]
    claims: list[ClaimCheck] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        """True when every shape claim was reproduced."""
        return all(c.holds for c in self.claims)


def check_claims(
    a1: TrialAnalysis, a2: TrialAnalysis, a3: TrialAnalysis
) -> list[ClaimCheck]:
    """Evaluate shape claims S1-S7 against measured analyses."""
    claims = []

    # S1: transient then steady state.
    claims.append(
        ClaimCheck(
            claim_id="S1",
            paper="delay shows a transient state then a steady state",
            measured=(
                f"trial1 transient={a1.transient_packets} packets then "
                f"steady {a1.steady_state_delay:.3f}s; "
                f"trial3 transient={a3.transient_packets} then "
                f"{a3.steady_state_delay:.3f}s"
            ),
            holds=a1.transient_packets > 0 and a3.transient_packets > 0,
        )
    )

    # S2: halving packet size roughly halves throughput.
    ratio = (
        a2.throughput.average / a1.throughput.average
        if a1.throughput.average
        else float("inf")
    )
    claims.append(
        ClaimCheck(
            claim_id="S2",
            paper="500B throughput ≈ half of 1000B throughput (TDMA)",
            measured=f"throughput ratio trial2/trial1 = {ratio:.2f}",
            holds=0.4 <= ratio <= 0.65,
        )
    )

    # S3: packet size leaves delay essentially unchanged.
    delay_ratio = (
        a2.steady_state_delay / a1.steady_state_delay
        if a1.steady_state_delay
        else float("inf")
    )
    claims.append(
        ClaimCheck(
            claim_id="S3",
            paper="one-way delay essentially unchanged between trials 1 and 2",
            measured=f"steady-state delay ratio trial2/trial1 = {delay_ratio:.2f}",
            holds=0.8 <= delay_ratio <= 1.2,
        )
    )

    # S4: 802.11 throughput significantly greater than TDMA.
    thr_gain = (
        a3.throughput.average / a1.throughput.average
        if a1.throughput.average
        else float("inf")
    )
    claims.append(
        ClaimCheck(
            claim_id="S4",
            paper="802.11 throughput significantly greater than TDMA",
            measured=f"throughput ratio trial3/trial1 = {thr_gain:.1f}x",
            holds=thr_gain > 2.0,
        )
    )

    # S5: 802.11 delay significantly less than TDMA.
    delay_gain = (
        a1.steady_state_delay / a3.steady_state_delay
        if a3.steady_state_delay
        else float("inf")
    )
    claims.append(
        ClaimCheck(
            claim_id="S5",
            paper="802.11 one-way delay significantly less than TDMA",
            measured=f"steady-state delay ratio trial1/trial3 = {delay_gain:.1f}x",
            holds=delay_gain > 2.0,
        )
    )

    # S6: safety — TDMA consumes >~20% of the gap, 802.11 <~2%.
    claims.append(
        ClaimCheck(
            claim_id="S6",
            paper=(
                "initial warning: TDMA ≈0.24s (≈5.4m, >20% of 25m gap); "
                "802.11 ≈0.02s (≈0.45m, <2%)"
            ),
            measured=(
                f"TDMA {a1.initial_packet_delay:.3f}s "
                f"({a1.safety.distance_during_delay:.2f}m, "
                f"{100 * a1.safety.gap_fraction_consumed:.1f}%); "
                f"802.11 {a3.initial_packet_delay:.3f}s "
                f"({a3.safety.distance_during_delay:.2f}m, "
                f"{100 * a3.safety.gap_fraction_consumed:.1f}%)"
            ),
            holds=(
                a1.safety.gap_fraction_consumed > 0.10
                and a3.safety.gap_fraction_consumed < 0.05
            ),
        )
    )

    # S7: throughput CIs are tight (paper: ~3-5% relative precision).
    worst = max(
        a1.confidence.relative_precision,
        a2.confidence.relative_precision,
        a3.confidence.relative_precision,
    )
    claims.append(
        ClaimCheck(
            claim_id="S7",
            paper="95% CI within ~5% relative precision of mean throughput",
            measured=f"worst relative precision across trials = {100 * worst:.1f}%",
            holds=worst < 0.15,
        )
    )
    return claims


def generate_report(duration: float = 40.0) -> ExperimentReport:
    """Run all three trials and evaluate every claim."""
    trials = {
        "trial1": run_trial(TRIAL_1.with_overrides(duration=duration)),
        "trial2": run_trial(TRIAL_2.with_overrides(duration=duration)),
        "trial3": run_trial(TRIAL_3.with_overrides(duration=duration)),
    }
    analyses = {name: analyze_trial(result) for name, result in trials.items()}
    claims = check_claims(
        analyses["trial1"], analyses["trial2"], analyses["trial3"]
    )
    return ExperimentReport(trials=trials, analyses=analyses, claims=claims)


def render_markdown(report: ExperimentReport) -> str:
    """Render the report as the markdown used in EXPERIMENTS.md."""
    lines = ["# Experiment report", ""]
    lines.append("## Shape claims")
    lines.append("")
    lines.append("| Claim | Paper | Measured | Holds |")
    lines.append("|---|---|---|---|")
    for claim in report.claims:
        mark = "yes" if claim.holds else "NO"
        lines.append(
            f"| {claim.claim_id} | {claim.paper} | {claim.measured} | {mark} |"
        )
    lines.append("")
    for name, result in report.trials.items():
        lines.append(f"## {name}")
        lines.append("")
        lines.append("| Platoon | Vehicle | n | avg delay | min | max |")
        lines.append("|---|---|---|---|---|---|")
        for row in delay_stats_table(result):
            lines.append(
                f"| {row.platoon} | {row.vehicle} | {row.count} "
                f"| {row.average:.4f} | {row.minimum:.4f} | {row.maximum:.4f} |"
            )
        lines.append("")
        lines.append(
            "| Platoon | avg Mbps | min | max | CI ± | rel. precision |"
        )
        lines.append("|---|---|---|---|---|---|")
        for trow in throughput_stats_table(result):
            lines.append(
                f"| {trow.platoon} | {trow.average_mbps:.4f} "
                f"| {trow.minimum_mbps:.4f} | {trow.maximum_mbps:.4f} "
                f"| {trow.ci_half_width:.4f} "
                f"| {100 * trow.relative_precision:.1f}% |"
            )
        lines.append("")
    lines.append("## Safety (§III.E)")
    lines.append("")
    lines.append(
        "| Trial | MAC | initial delay | distance | % of gap | margin | safe |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for srow in safety_table(list(report.trials.values())):
        lines.append(
            f"| {srow.trial} | {srow.mac_type} | {srow.initial_delay:.4f}s "
            f"| {srow.distance_travelled:.2f}m "
            f"| {100 * srow.gap_fraction:.1f}% "
            f"| {srow.stopping_margin:.2f}m | {srow.is_safe} |"
        )
    lines.append("")
    return "\n".join(lines)
