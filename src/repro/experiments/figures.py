"""Data series behind each figure in the paper.

Each ``fig_*`` function returns the plottable series for the
corresponding figure.  Figures 3 and 4 in the paper are Tcl code
listings, not data; their Python equivalents are
:class:`repro.core.trials.TrialConfig` and
:class:`repro.stats.recorder.ThroughputRecorder` respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.runner import TrialResult, run_trial
from repro.core.scenario import EblScenario
from repro.core.trials import TRIAL_1, TRIAL_2, TRIAL_3, TrialConfig
from repro.stats.delay import DelaySeries
from repro.stats.throughput import ThroughputSeries


@dataclass
class DelayFigure:
    """One delay-vs-packet-ID figure (overall plus transient inset)."""

    title: str
    overall: DelaySeries
    transient: DelaySeries

    @property
    def steady_state_level(self) -> float:
        """The "enters the steady state with a one-way delay of
        approximately X seconds" number in the caption."""
        return self.overall.steady_state_level()

    @property
    def transient_packets(self) -> int:
        """The "transient state lasts until approximately packet N"."""
        return len(self.transient)


@dataclass
class ThroughputFigure:
    """One throughput-vs-time figure."""

    title: str
    series: ThroughputSeries

    @property
    def traffic_start(self) -> float:
        """The "vehicles begin communicating at approximately N seconds"."""
        return self.series.start_of_traffic()


@dataclass
class MovementFrame:
    """Positions of every vehicle at one instant (Figs. 1-2 snapshots)."""

    time: float
    platoon1: list[tuple[float, float]]
    platoon2: list[tuple[float, float]]


def fig_1_2_platoon_movement(
    config: Optional[TrialConfig] = None,
    times: Optional[list[float]] = None,
) -> list[MovementFrame]:
    """Figs. 1-2: initial and subsequent platoon movement snapshots.

    Returns position frames at the key timeline instants: start, brake
    onset, arrival (= platoon 2 departure), and after departure.
    """
    config = config or TRIAL_1
    scenario = EblScenario(config.with_overrides(enable_trace=False))
    if times is None:
        times = [
            0.0,
            scenario.brake_onset_time,
            scenario.arrival_time,
            scenario.arrival_time + 5.0,
        ]
    return [
        MovementFrame(
            time=t,
            platoon1=scenario.platoon1.positions(t),
            platoon2=scenario.platoon2.positions(t),
        )
        for t in times
    ]


def _delay_figure(result: TrialResult, platoon_id: int, title: str) -> DelayFigure:
    combined = result.platoon(platoon_id).combined_delays()
    return DelayFigure(
        title=title, overall=combined, transient=combined.transient()
    )


def _throughput_figure(
    result: TrialResult, platoon_id: int, title: str
) -> ThroughputFigure:
    return ThroughputFigure(
        title=title, series=result.platoon(platoon_id).throughput
    )


def fig_5_6_trial1_delay(result: Optional[TrialResult] = None) -> DelayFigure:
    """Figs. 5-6: Trial 1 one-way delay, platoon 1 (overall + transient)."""
    result = result or run_trial(TRIAL_1)
    return _delay_figure(result, 1, "Trial 1 one-way delay (platoon 1)")


def fig_7_trial1_throughput(
    result: Optional[TrialResult] = None,
) -> ThroughputFigure:
    """Fig. 7: Trial 1 throughput over time, platoon 1."""
    result = result or run_trial(TRIAL_1)
    return _throughput_figure(result, 1, "Trial 1 throughput (platoon 1)")


def fig_8_9_trial2_delay(result: Optional[TrialResult] = None) -> DelayFigure:
    """Figs. 8-9: Trial 2 one-way delay, platoon 1."""
    result = result or run_trial(TRIAL_2)
    return _delay_figure(result, 1, "Trial 2 one-way delay (platoon 1)")


def fig_10_trial2_throughput(
    result: Optional[TrialResult] = None,
) -> ThroughputFigure:
    """Fig. 10: Trial 2 throughput over time, platoon 1."""
    result = result or run_trial(TRIAL_2)
    return _throughput_figure(result, 1, "Trial 2 throughput (platoon 1)")


def fig_11_14_trial3_delay(
    result: Optional[TrialResult] = None,
) -> tuple[DelayFigure, DelayFigure]:
    """Figs. 11-14: Trial 3 one-way delay for both platoons."""
    result = result or run_trial(TRIAL_3)
    return (
        _delay_figure(result, 1, "Trial 3 one-way delay (platoon 1)"),
        _delay_figure(result, 2, "Trial 3 one-way delay (platoon 2)"),
    )


def fig_15_trial3_throughput(
    result: Optional[TrialResult] = None,
) -> ThroughputFigure:
    """Fig. 15: Trial 3 throughput over time, platoon 1."""
    result = result or run_trial(TRIAL_3)
    return _throughput_figure(result, 1, "Trial 3 throughput (platoon 1)")
