"""Text rendering of the paper's figures.

No plotting stack is assumed: figures render as Unicode scatter/step
charts suitable for terminals, logs, and the EXPERIMENTS record — the
same series a matplotlib user would plot from
:mod:`repro.experiments.figures`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.figures import DelayFigure, ThroughputFigure


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    marker: str = "·",
) -> str:
    """Render a scatter of (xs, ys) as a text chart."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")

    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_max:8.3f} |"
        elif index == height - 1:
            label = f"{y_min:8.3f} |"
        elif index == height // 2 and ylabel:
            label = f"{ylabel[:8]:>8s} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    footer = f"{x_min:<12.3f}{xlabel.center(width - 24)}{x_max:>12.3f}"
    lines.append("          " + footer)
    return "\n".join(lines)


def render_scenario_map(
    scenario,
    t: float,
    width: int = 60,
    height: int = 24,
    extent: float = 350.0,
) -> str:
    """Top-down ASCII map of the intersection scenario at time ``t``.

    Platoon-1 vehicles render as ``1``, platoon-2 as ``2``, the
    intersection centre as ``+`` — a terminal stand-in for the NAM
    animation frames (Figs. 1-2).
    """
    if width < 10 or height < 5:
        raise ValueError("map too small")
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, char: str) -> None:
        col = int((x + extent) / (2 * extent) * (width - 1))
        row = int((extent - y) / (2 * extent) * (height - 1))
        if 0 <= col < width and 0 <= row < height:
            grid[row][col] = char

    # Streets through the intersection.
    mid_row = int(extent / (2 * extent) * (height - 1))
    mid_col = int(extent / (2 * extent) * (width - 1))
    for col in range(width):
        grid[mid_row][col] = "-"
    for row in range(height):
        grid[row][mid_col] = "|"
    place(0.0, 0.0, "+")

    for vehicle in scenario.platoon1_vehicles:
        x, y = vehicle.mobility.position(t)
        place(x, y, "1")
    for vehicle in scenario.platoon2_vehicles:
        x, y = vehicle.mobility.position(t)
        place(x, y, "2")

    header = f"t = {t:.1f} s   ({2 * extent:.0f} m square)".center(width)
    return header + "\n" + "\n".join("".join(row) for row in grid)


def render_delay_figure(figure: DelayFigure, transient: bool = False) -> str:
    """Render a delay-vs-packet-ID figure (Figs. 5/6/8/9/11-14 style)."""
    series = figure.transient if transient else figure.overall
    samples = list(series)
    if not samples:
        return f"{figure.title}: (no packets)"
    xs = [float(s.packet_id) for s in samples]
    ys = [s.delay for s in samples]
    subtitle = " (transient state)" if transient else ""
    chart = ascii_plot(
        xs,
        ys,
        title=figure.title + subtitle,
        xlabel="packet ID",
        ylabel="delay s",
    )
    caption = (
        f"transient ≈ {figure.transient_packets} packets; "
        f"steady state ≈ {figure.steady_state_level:.3f} s"
    )
    return chart + "\n" + caption.center(82)


def render_throughput_figure(figure: ThroughputFigure) -> str:
    """Render a throughput-vs-time figure (Figs. 7/10/15 style)."""
    samples = figure.series.samples
    if not samples:
        return f"{figure.title}: (no samples)"
    chart = ascii_plot(
        [s.time for s in samples],
        [s.mbps for s in samples],
        title=figure.title,
        xlabel="time s",
        ylabel="Mbps",
        marker="*",
    )
    start = figure.traffic_start
    start_text = (
        f"traffic begins ≈ {start:.1f} s" if math.isfinite(start)
        else "no traffic observed"
    )
    summary = figure.series.summary()
    caption = (
        f"{start_text}; avg {summary.average:.3f} / "
        f"max {summary.maximum:.3f} Mbps"
    )
    return chart + "\n" + caption.center(82)
