"""Crash-tolerant campaign execution on a parallel worker pool.

:func:`run_campaign` runs a batch of trials the way a long unattended
sweep has to be run: every trial in its own subprocess (a segfault or a
runaway loop cannot take the campaign down), up to ``jobs`` trials in
flight at once, a watchdog deadline per worker, structured
:class:`TrialOutcome` records instead of raised exceptions, and a JSONL
checkpoint so an interrupted campaign resumes where it stopped instead
of recomputing finished trials.

The scheduler is a parent-side event loop that **continuously drains
each worker's result queue while waiting**.  That is a correctness
property, not just a throughput one: a worker whose result payload
exceeds the OS pipe buffer (a large ``violations`` list, say) blocks in
its queue feeder thread until the parent reads, so a join-before-drain
protocol deadlocks — the watchdog then kills a *finished* trial and
records a synthetic ``timeout``.  Draining while waiting removes that
failure mode structurally; ``jobs=1`` keeps the exact sequential trial
ordering while still using the drain-while-waiting protocol.

Scheduling never touches results: each worker computes its metrics from
its own config and seed, so per-trial records are bit-identical at any
``jobs`` value, and :class:`CampaignResult` always lists outcomes in
trial order regardless of completion order.  Only the parent appends to
the checkpoint (single writer), in completion order — resume indexes by
key and is order-insensitive.

For exercising the failure paths themselves (tests, the CI smoke
campaign), a :class:`CampaignTrial` can carry a synthetic ``kind``:
``inject-crash`` makes the worker raise, ``inject-hang`` makes it sleep
past any watchdog, and ``inject-large-result`` reports a >1 MiB result
payload — producing real ``error``/``timeout`` records and a real
pipe-drain exercise through the real machinery.

This module is host-side orchestration, not simulation: it deliberately
reads the wall clock (per-trial wall time is one of its outputs) and the
SIM002 suppressions below mark exactly those reads.
"""

from __future__ import annotations

import copy as copy_module
import json
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_for_ready
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.core.analysis import assess_resilience
from repro.core.runner import TrialResult, harvest
from repro.core.trials import TrialConfig
from repro.faults.schedule import FaultPlan
from repro.obs.config import ObservabilityConfig
from repro.obs.introspect import read_last_heartbeat
from repro.sanitizer.config import SanitizerConfig

#: Synthetic trial kinds used to exercise the campaign's failure paths.
TRIAL_KINDS = ("trial", "inject-crash", "inject-hang", "inject-large-result")

#: Trial statuses a campaign can record.  ``violation`` means the trial
#: completed but its runtime sanitizer (simsan) found broken invariants.
STATUSES = ("ok", "error", "timeout", "violation")

#: Records in an ``inject-large-result`` payload; with ~1 KiB per record
#: the serialized result is >1 MiB — far beyond any OS pipe buffer, so
#: the worker's queue feeder cannot flush it until the parent drains.
LARGE_RESULT_RECORDS = 1100

#: Longest the scheduler sleeps between drain rounds, seconds.  Workers
#: normally wake it early (process sentinels and queue readers are both
#: waited on), so this only bounds the latency of edge cases where
#: neither fires.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class CampaignTrial:
    """One unit of campaign work, addressed by a unique ``key``."""

    key: str
    config: Optional[TrialConfig] = None
    kind: str = "trial"
    #: Directory Perfetto traces of *failed/violation* trials are written
    #: to (requires a config with ``tracing`` enabled); None disables.
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("trial key must be non-empty")
        if self.kind not in TRIAL_KINDS:
            raise ValueError(
                f"unknown trial kind {self.kind!r}; expected one of {TRIAL_KINDS}"
            )
        if self.kind == "trial" and self.config is None:
            raise ValueError("a real trial needs a config")


@dataclass
class TrialOutcome:
    """What one campaign trial produced — success or structured failure."""

    key: str
    status: str
    metrics: dict = field(default_factory=dict)
    error: str = ""
    #: Structured invariant violations (sanitizing campaigns only); each
    #: entry is an :meth:`InvariantViolation.to_dict` record carrying the
    #: scenario name, sim-time and offending uid, so the failure is
    #: actionable straight from the checkpoint, without a rerun.
    violations: list = field(default_factory=list)
    #: Wall-clock seconds the trial's subprocess ran.
    elapsed: float = 0.0
    #: True when this outcome was loaded from a checkpoint, not re-run.
    resumed: bool = False
    #: Path of the Perfetto trace captured for this failure ('' if none).
    trace: str = ""

    def to_json(self) -> str:
        """One checkpoint line."""
        record = {
            "key": self.key,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "elapsed": self.elapsed,
        }
        if self.violations:
            record["violations"] = self.violations
        if self.trace:
            record["trace"] = self.trace
        return json.dumps(record)

    @classmethod
    def from_json(cls, line: str) -> "TrialOutcome":
        data = json.loads(line)
        outcome = cls(
            key=data["key"],
            status=data["status"],
            metrics=dict(data.get("metrics", {})),
            error=data.get("error", ""),
            violations=list(data.get("violations", [])),
            elapsed=float(data.get("elapsed", 0.0)),
            trace=data.get("trace", ""),
        )
        if outcome.status not in STATUSES:
            raise ValueError(f"unknown status {outcome.status!r}")
        return outcome


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in trial order."""

    outcomes: list[TrialOutcome]

    def by_status(self, status: str) -> list[TrialOutcome]:
        """Outcomes with the given status."""
        return [o for o in self.outcomes if o.status == status]

    @property
    def succeeded(self) -> list[TrialOutcome]:
        return self.by_status("ok")

    @property
    def failed(self) -> list[TrialOutcome]:
        """Error and timeout records together."""
        return [o for o in self.outcomes if o.status != "ok"]

    def outcome(self, key: str) -> TrialOutcome:
        """Outcome for one trial key."""
        for outcome in self.outcomes:
            if outcome.key == key:
                return outcome
        raise KeyError(f"no outcome for trial {key!r}")


def _trial_metrics(result: TrialResult) -> dict:
    """The per-trial numbers a campaign checkpoint carries."""
    platoon1 = result.platoon1
    report = assess_resilience(result)
    initial = min(
        (
            flow.delays.initial_delay
            for flow in platoon1.flows
            if len(flow.delays)
        ),
        default=float("nan"),
    )
    delivered = sum(
        flow.delivered_segments
        for platoon in (result.platoon1, result.platoon2)
        for flow in platoon.flows
    )
    metrics = {
        "initial_packet_delay": initial,
        "delivered_segments": float(delivered),
        "warning_delivery_probability": report.delivery_probability,
        "faults_injected": float(
            sum(1 for entry in result.fault_log if entry.action == "inject")
        ),
    }
    if platoon1.throughput.samples:
        metrics["throughput_avg_mbps"] = platoon1.throughput.summary().average
    recovery = report.recovery_summary()
    if recovery is not None:
        metrics["recovery_latency_avg"] = recovery.average
    return metrics


def _write_failure_trace(trial: CampaignTrial, scenario) -> str:
    """Export the scenario's span trace as a Perfetto file; '' on no-op.

    Only called for failed/violation trials: healthy trials never pay
    the export, and a campaign directory holds exactly the traces worth
    opening in ui.perfetto.dev.
    """
    if trial.trace_dir is None or scenario is None:
        return ""
    obs = scenario.observability
    if obs is None or obs.spans is None or not len(obs.spans):
        return ""
    from repro.obs.tracing import write_chrome_trace

    path = Path(trial.trace_dir) / f"{trial.key}.perfetto.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(str(path), obs.spans.finalize(), label=trial.key)
    return str(path)


def _large_result_payload(trial: CampaignTrial) -> dict:
    """A synthetic >1 MiB result: the pipe-drain exercise for the pool."""
    filler = "payload-" + "x" * 1016  # ~1 KiB per violation record
    return {
        "status": "violation",
        "metrics": {"payload_records": float(LARGE_RESULT_RECORDS)},
        "violations": [
            {
                "checker": "synthetic-large-result",
                "layer": "campaign",
                "message": filler,
                "time": float(index),
                "scenario": trial.key,
            }
            for index in range(LARGE_RESULT_RECORDS)
        ],
        "error": "synthetic >1 MiB result payload (pipe-drain exercise)",
        "trace": "",
    }


def _worker(trial: CampaignTrial, results: multiprocessing.Queue) -> None:
    """Subprocess entry point: run one trial, report through the queue."""
    # The scenario is built and run in separate steps (rather than via
    # run_trial) so a failing run still leaves the scenario — and its
    # span trace — reachable for the failure-trace export.
    scenario = None
    try:
        if trial.kind == "inject-crash":
            raise RuntimeError(f"injected crash in trial {trial.key!r}")
        if trial.kind == "inject-hang":
            while True:  # exceed any watchdog; the parent will kill us
                time.sleep(3600)
        if trial.kind == "inject-large-result":
            results.put(_large_result_payload(trial))
            return
        from repro.core.scenario import EblScenario

        scenario = EblScenario(trial.config)
        scenario.run()
        result = harvest(scenario)
        report = result.sanitizer_report
        if report is not None and not report.ok:
            results.put(
                {
                    "status": "violation",
                    "metrics": _trial_metrics(result),
                    "violations": [v.to_dict() for v in report.violations],
                    "error": report.render(),
                    "trace": _write_failure_trace(trial, scenario),
                }
            )
            return
        results.put({"status": "ok", "metrics": _trial_metrics(result)})
    except BaseException:
        # The traceback travels up as data; re-raising would only spray it
        # on stderr a second time.
        payload = {"status": "error", "error": traceback.format_exc()}
        try:
            payload["trace"] = _write_failure_trace(trial, scenario)
        except Exception:
            payload["trace"] = ""  # never mask the original failure
        results.put(payload)


def _load_checkpoint(path: Path) -> dict[str, TrialOutcome]:
    """Completed outcomes by key; corrupt lines (a crash mid-write) skipped."""
    completed: dict[str, TrialOutcome] = {}
    if not path.exists():
        return completed
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            outcome = TrialOutcome.from_json(line)
        except (ValueError, KeyError):
            continue  # torn/corrupt line: recompute that trial
        completed[outcome.key] = outcome
    return completed


def _resumed_copy(previous: TrialOutcome) -> TrialOutcome:
    """A deep, ``resumed=True`` copy of a checkpointed outcome.

    Callers own the outcomes a campaign returns and may mutate them
    (metrics post-processing, violation triage).  Handing out the cached
    object itself would let that mutation corrupt resume state on a
    later :func:`run_campaign` call in the same process.
    """
    return TrialOutcome(
        key=previous.key,
        status=previous.status,
        metrics=copy_module.deepcopy(previous.metrics),
        error=previous.error,
        violations=copy_module.deepcopy(previous.violations),
        elapsed=previous.elapsed,
        resumed=True,
        trace=previous.trace,
    )


def _heartbeat_progress(trial: CampaignTrial) -> str:
    """Where a killed trial had got to, from its last on-disk heartbeat.

    The worker's introspector appends heartbeats line-by-line, so even a
    SIGKILL'd trial leaves its progress behind; empty string when the
    trial had no heartbeat file or never wrote one.
    """
    config = trial.config
    if config is None or config.observability is None:
        return ""
    path = config.observability.heartbeat_path
    if path is None:
        return ""
    beat = read_last_heartbeat(path)
    if beat is None:
        return ""
    message = (
        f"; last heartbeat: sim_time={beat.get('sim_time')} "
        f"events={beat.get('events')} "
        f"events_per_wall_s={beat.get('events_per_wall_s')}"
    )
    # The interval rate is the slow-vs-hung discriminator: a trial that
    # was still retiring events in its final beat was slow but alive; one
    # whose per-interval rate had collapsed was effectively hung.  The
    # record survived a kill, so the value may be torn or hand-edited —
    # a non-numeric rate just omits the clause rather than crashing the
    # watchdog report.
    interval_rate = beat.get("interval_events_per_wall_s")
    if interval_rate is not None:
        try:
            message += f" (last interval: {float(interval_rate):,.0f} events/wall-s)"
        except (TypeError, ValueError):
            pass
    return message


def _terminate(process) -> None:
    process.terminate()
    process.join(timeout=5.0)
    if process.is_alive():  # pragma: no cover - stubborn process
        process.kill()
        process.join()


def _poll_result(results: multiprocessing.Queue) -> Optional[dict]:
    """One non-blocking drain attempt; None when nothing (usable) arrived.

    A worker killed mid-flush can leave a torn message behind — that
    surfaces as EOF/OS errors here and counts as "no result", exactly
    like an empty queue.
    """
    try:
        return results.get_nowait()
    except queue_module.Empty:
        return None
    except (EOFError, OSError):  # pragma: no cover - torn post-kill message
        return None


def _retire_queue(results: multiprocessing.Queue) -> None:
    """Release a drained queue's pipe fds and feeder bookkeeping.

    The parent never puts, so ``join_thread`` returns immediately; what
    this buys is prompt fd release — a thousand-trial campaign must not
    hold a pipe pair per finished trial until garbage collection gets
    around to it.
    """
    results.close()
    results.join_thread()


@dataclass
class _Worker:
    """Parent-side bookkeeping for one in-flight trial subprocess."""

    index: int
    trial: CampaignTrial
    process: object
    results: multiprocessing.Queue
    started: float
    deadline: float
    #: The drained result payload, once the worker reported.
    payload: Optional[dict] = None
    #: Wall-clock instant the payload arrived (elapsed uses it: queue
    #: residency and parent scheduling must not count as trial time).
    reported_at: Optional[float] = None

    def drain(self, now: float) -> None:
        if self.payload is None:
            self.payload = _poll_result(self.results)
            if self.payload is not None:
                self.reported_at = now


def _outcome_from_payload(
    trial: CampaignTrial, payload: dict, elapsed: float
) -> TrialOutcome:
    """The structured record for a worker that reported a result."""
    if payload["status"] == "ok":
        return TrialOutcome(
            key=trial.key,
            status="ok",
            metrics=payload["metrics"],
            elapsed=elapsed,
        )
    if payload["status"] == "violation":
        return TrialOutcome(
            key=trial.key,
            status="violation",
            metrics=payload["metrics"],
            error=payload["error"],
            violations=payload["violations"],
            elapsed=elapsed,
            trace=payload.get("trace", ""),
        )
    return TrialOutcome(
        key=trial.key,
        status="error",
        error=payload["error"],
        elapsed=elapsed,
        trace=payload.get("trace", ""),
    )


def _finalize_worker(
    worker: _Worker, now: float, killed: bool, timeout: float
) -> TrialOutcome:
    """Turn a finished (or just-killed) worker into its outcome record."""
    if worker.payload is not None:
        reported = worker.reported_at if worker.reported_at is not None else now
        return _outcome_from_payload(
            worker.trial, worker.payload, reported - worker.started
        )
    if killed:
        return TrialOutcome(
            key=worker.trial.key,
            status="timeout",
            error=f"trial exceeded its {timeout:g}s watchdog"
            + _heartbeat_progress(worker.trial),
            elapsed=now - worker.started,
        )
    return TrialOutcome(
        key=worker.trial.key,
        status="error",
        error=(
            "worker died without a result "
            f"(exit code {worker.process.exitcode})"
        ),
        elapsed=now - worker.started,
    )


def run_campaign(
    trials: Sequence[CampaignTrial],
    timeout: float = 120.0,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[TrialOutcome], None]] = None,
    jobs: int = 1,
) -> CampaignResult:
    """Run every trial in an isolated subprocess; never raise per-trial.

    Parameters
    ----------
    trials:
        The work list; keys must be unique (they index the checkpoint).
    timeout:
        Watchdog per trial, wall-clock seconds, counted from that trial's
        own subprocess start.  A trial still running at its deadline is
        killed; if it had already reported a result by then (a finished
        worker lingering in teardown, or a result still sitting in the
        pipe), the real outcome is recorded — only trials that genuinely
        never reported become ``timeout``.
    checkpoint:
        JSONL file the parent (and only the parent) appends to after
        every finished trial, in completion order.  With ``resume``
        True, trials whose keys already appear in it are not re-run;
        deep copies of their records are returned with ``resumed=True``.
    progress:
        Optional callback invoked with each :class:`TrialOutcome` as it
        is produced: resumed outcomes first (in trial order), then live
        outcomes in completion order.
    jobs:
        Trial subprocesses in flight at once.  Scheduling never feeds
        back into results, so any value produces bit-identical per-trial
        records and the returned result is always in trial order;
        ``jobs=1`` (the default) additionally runs trials strictly in
        sequence.
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    keys = [trial.key for trial in trials]
    if len(set(keys)) != len(keys):
        raise ValueError("trial keys must be unique")
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed: dict[str, TrialOutcome] = {}
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume requires a checkpoint path")
        completed = _load_checkpoint(checkpoint_path)

    # Fork inherits the loaded modules (fast); spawn is the portable
    # fallback — everything shipped to the worker is picklable either way.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )

    done: dict[int, TrialOutcome] = {}

    def record(outcome: TrialOutcome, index: int, fresh: bool) -> None:
        # Single-writer checkpoint discipline: every append happens here,
        # in the parent, one line per freshly finished trial.
        done[index] = outcome
        if fresh and checkpoint_path is not None:
            with checkpoint_path.open("a") as handle:
                handle.write(outcome.to_json() + "\n")
        if progress is not None:
            progress(outcome)

    pending: list[tuple[int, CampaignTrial]] = []
    for index, trial in enumerate(trials):
        previous = completed.get(trial.key)
        if previous is not None:
            record(_resumed_copy(previous), index, fresh=False)
        else:
            pending.append((index, trial))
    pending.reverse()  # pop() from the tail keeps trial order

    running: list[_Worker] = []
    while pending or running:
        while pending and len(running) < jobs:
            index, trial = pending.pop()
            results: multiprocessing.Queue = context.Queue()
            process = context.Process(
                target=_worker, args=(trial, results), daemon=True
            )
            started = time.monotonic()  # simlint: disable=SIM002
            process.start()
            running.append(
                _Worker(
                    index=index,
                    trial=trial,
                    process=process,
                    results=results,
                    started=started,
                    deadline=started + timeout,
                )
            )

        now = time.monotonic()  # simlint: disable=SIM002
        still_running: list[_Worker] = []
        finished = False
        for worker in running:
            worker.drain(now)
            if not worker.process.is_alive():
                # The feeder flushes before the process exits, so one
                # post-mortem drain catches a result that raced the
                # liveness check above.
                worker.drain(now)
                worker.process.join()
                outcome = _finalize_worker(worker, now, killed=False,
                                           timeout=timeout)
            elif now >= worker.deadline:
                # Watchdog.  Drain once more after the kill too: a trial
                # that finished right at the deadline keeps its real
                # outcome instead of a synthetic timeout.
                _terminate(worker.process)
                worker.drain(now)
                outcome = _finalize_worker(worker, now, killed=True,
                                           timeout=timeout)
            else:
                still_running.append(worker)
                continue
            _retire_queue(worker.results)
            record(outcome, worker.index, fresh=True)
            finished = True
        running = still_running

        # The fill loop above ran until the pool was full or the work
        # list empty, so nothing new can start before a worker finishes
        # — when none did this round, sleep until one shows signs of it.
        if running and not finished:
            _sleep_until_activity(running, timeout=_POLL_INTERVAL)

    return CampaignResult(
        outcomes=[done[index] for index in range(len(trials))]
    )


def _sleep_until_activity(running: Sequence[_Worker], timeout: float) -> None:
    """Block until a worker exits, starts flushing a result, or ``timeout``.

    Waits on each live process's sentinel *and* (where the platform
    exposes it) the result queue's read end — a worker blocked flushing
    an over-pipe-buffer payload never exits until drained, so its
    sentinel alone would sleep the scheduler for the full poll interval.
    """
    waitables = []
    for worker in running:
        waitables.append(worker.process.sentinel)
        if worker.payload is None:
            reader = getattr(worker.results, "_reader", None)
            if reader is not None:
                waitables.append(reader)
    if not waitables:  # pragma: no cover - every worker already reported
        time.sleep(timeout)  # simlint: disable=SIM002
        return
    _wait_for_ready(waitables, timeout)


def campaign_trials(
    base: TrialConfig,
    seeds: Sequence[int],
    fault_plan: Optional[FaultPlan] = None,
    inject_crash: bool = False,
    inject_hang: bool = False,
    heartbeat_dir: Optional[Union[str, Path]] = None,
    heartbeat_interval: float = 1.0,
    sanitize: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
) -> list[CampaignTrial]:
    """One trial per seed over ``base``, plus optional synthetic failures.

    With ``heartbeat_dir`` set, each trial runs with the introspector on,
    appending heartbeats to ``<dir>/<key>.heartbeat.jsonl`` — the
    watchdog then reports how far a killed trial had progressed.  With
    ``sanitize`` True, every trial runs under the full runtime sanitizer
    and invariant violations surface as structured ``violation`` records.
    With ``trace_dir`` set, every trial records a causal span trace and
    the worker exports ``<dir>/<key>.perfetto.json`` for failed and
    violation trials only — a campaign leaves behind exactly the traces
    worth opening in ui.perfetto.dev.
    """
    sanitize_config = SanitizerConfig() if sanitize else base.sanitize

    def observability(key: str) -> Optional[ObservabilityConfig]:
        if heartbeat_dir is None and trace_dir is None:
            return base.observability
        return ObservabilityConfig(
            metrics=True,
            journeys=False,  # campaigns run many trials; keep memory flat
            heartbeat_interval=(
                heartbeat_interval if heartbeat_dir is not None else None
            ),
            heartbeat_path=(
                str(Path(heartbeat_dir) / f"{key}.heartbeat.jsonl")
                if heartbeat_dir is not None
                else None
            ),
            tracing=trace_dir is not None,
        )

    trials = [
        CampaignTrial(
            key=f"{base.name}-seed{seed}",
            config=base.with_overrides(
                name=f"{base.name}-seed{seed}",
                seed=seed,
                enable_trace=False,
                fault_plan=fault_plan,
                observability=observability(f"{base.name}-seed{seed}"),
                sanitize=sanitize_config,
            ),
            trace_dir=str(trace_dir) if trace_dir is not None else None,
        )
        for seed in seeds
    ]
    if inject_crash:
        trials.append(CampaignTrial(key="inject-crash", kind="inject-crash"))
    if inject_hang:
        trials.append(CampaignTrial(key="inject-hang", kind="inject-hang"))
    return trials
