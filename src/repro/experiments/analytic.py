"""Closed-form performance models used to validate the simulator.

Two classical results bracket the paper's MAC comparison:

* :class:`TdmaModel` — deterministic frame arithmetic: a packet arriving
  at a random instant waits on average half a frame for its slot, and a
  saturated node carries exactly one packet per frame.
* :class:`BianchiModel` — Bianchi's (JSAC 2000) saturation-throughput
  model for 802.11 DCF, solved numerically with SciPy.

``tests/experiments/test_analytic.py`` checks the simulator against
both — the cross-validation that gives the shape claims their teeth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from repro.mac.base import PLCP_OVERHEAD
from repro.mac.dcf import DcfParams
from repro.mac.tdma import TdmaParams
from repro.net.headers import MacHeader


@dataclass
class TdmaModel:
    """Deterministic TDMA frame arithmetic."""

    params: TdmaParams
    bitrate: float = 2e6

    @property
    def slot_time(self) -> float:
        """One slot's airtime, seconds."""
        return self.params.slot_duration(self.bitrate)

    @property
    def frame_time(self) -> float:
        """One frame's airtime, seconds."""
        return self.params.frame_duration(self.bitrate)

    def mean_access_delay(self) -> float:
        """Expected wait for the node's slot from a random arrival.

        Uniform arrival within the frame → half a frame on average.
        """
        return self.frame_time / 2.0

    def transmission_time(self, packet_bytes: int) -> float:
        """Airtime of one data packet within the slot."""
        return (
            PLCP_OVERHEAD
            + (packet_bytes + MacHeader.WIRE_SIZE) * 8.0 / self.bitrate
        )

    def mean_packet_delay(self, packet_bytes: int) -> float:
        """Access wait plus transmission, for an unqueued packet."""
        return self.mean_access_delay() + self.transmission_time(packet_bytes)

    def saturation_throughput(self, packet_bytes: int) -> float:
        """Per-node goodput with a always-full queue: one packet/frame,
        bits per second."""
        return packet_bytes * 8.0 / self.frame_time

    def queueing_delay(self, packet_bytes: int, backlog_packets: float) -> float:
        """Delay seen behind a backlog of ``backlog_packets`` (each costs
        one frame of service)."""
        return (
            backlog_packets * self.frame_time
            + self.mean_packet_delay(packet_bytes)
        )


@dataclass
class BianchiModel:
    """Bianchi's saturation model for n contending DCF stations.

    Basic-access (no RTS/CTS) variant.  All stations saturated, ideal
    channel, identical frame sizes — the textbook assumptions.
    """

    n_stations: int
    packet_bytes: int = 1000
    params: DcfParams = None
    bitrate: float = 2e6

    def __post_init__(self) -> None:
        if self.n_stations < 2:
            raise ValueError("Bianchi's model needs at least 2 stations")
        if self.params is None:
            self.params = DcfParams()

    # -- the fixed point ------------------------------------------------------

    def _tau(self, p: float) -> float:
        """Per-slot transmission probability given collision prob ``p``."""
        w = self.params.cw_min + 1  # W in Bianchi's notation
        m = int(math.log2((self.params.cw_max + 1) / w))
        if p >= 1.0:
            return 0.0
        num = 2.0 * (1.0 - 2.0 * p)
        den = (1.0 - 2.0 * p) * (w + 1) + p * w * (1.0 - (2.0 * p) ** m)
        return num / den

    def solve(self) -> tuple[float, float]:
        """Solve the (tau, p) fixed point; returns (tau, p)."""
        n = self.n_stations

        def residual(p: float) -> float:
            tau = self._tau(p)
            return p - (1.0 - (1.0 - tau) ** (n - 1))

        p = optimize.brentq(residual, 1e-9, 1.0 - 1e-9)
        return self._tau(p), p

    # -- airtimes -------------------------------------------------------------------

    def _data_time(self) -> float:
        return (
            PLCP_OVERHEAD
            + (self.packet_bytes + MacHeader.WIRE_SIZE) * 8.0 / self.bitrate
        )

    def _ack_time(self) -> float:
        return PLCP_OVERHEAD + self.params.ack_size * 8.0 / self.params.basic_rate

    def success_time(self) -> float:
        """Airtime of a successful exchange: DATA + SIFS + ACK + DIFS."""
        return (
            self._data_time()
            + self.params.sifs
            + self._ack_time()
            + self.params.difs
        )

    def collision_time(self) -> float:
        """Airtime wasted by a collision: DATA + DIFS (no ACK arrives)."""
        return self._data_time() + self.params.difs

    # -- outputs -----------------------------------------------------------------------

    def saturation_throughput(self) -> float:
        """Aggregate goodput of the cell, bits per second."""
        tau, _ = self.solve()
        n = self.n_stations
        p_tr = 1.0 - (1.0 - tau) ** n
        p_s = n * tau * (1.0 - tau) ** (n - 1) / p_tr
        payload_bits = self.packet_bytes * 8.0
        sigma = self.params.slot_time
        expected_slot = (
            (1.0 - p_tr) * sigma
            + p_tr * p_s * self.success_time()
            + p_tr * (1.0 - p_s) * self.collision_time()
        )
        return p_s * p_tr * payload_bits / expected_slot

    def collision_probability(self) -> float:
        """Conditional collision probability a transmitting station sees."""
        return self.solve()[1]
