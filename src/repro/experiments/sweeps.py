"""Parameter sweeps: the paper's future-work directions and our ablations.

* :func:`packet_size_sweep` — the conclusion's call to "determine ideal
  802.11-based IVC MANET packet sizes".
* :func:`platoon_size_sweep` — "a larger and more complex vehicular
  configuration".
* :func:`tdma_slot_ablation` — sensitivity of every headline claim to the
  unpublished TDMA frame size (DESIGN.md X3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.analysis import analyze_trial
from repro.core.runner import run_trial
from repro.core.trials import TRIAL_1, TRIAL_3, TrialConfig


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied parameter plus headline metrics."""

    parameter: float
    throughput_mbps: float
    steady_state_delay: float
    initial_packet_delay: float
    gap_fraction: float


def _measure(config: TrialConfig, parameter: float) -> SweepPoint:
    analysis = analyze_trial(run_trial(config))
    return SweepPoint(
        parameter=parameter,
        throughput_mbps=analysis.throughput.average,
        steady_state_delay=analysis.steady_state_delay,
        initial_packet_delay=analysis.initial_packet_delay,
        gap_fraction=analysis.safety.gap_fraction_consumed,
    )


def packet_size_sweep(
    sizes: Sequence[int] = (100, 250, 500, 1000, 1500),
    base: Optional[TrialConfig] = None,
    duration: float = 30.0,
) -> list[SweepPoint]:
    """Throughput/delay vs 802.11 packet size (conclusion's open question)."""
    base = base or TRIAL_3
    return [
        _measure(
            base.with_overrides(
                name=f"pkt{size}",
                packet_size=size,
                duration=duration,
                enable_trace=False,
            ),
            float(size),
        )
        for size in sizes
    ]


def platoon_size_sweep(
    sizes: Sequence[int] = (2, 3, 5, 8),
    base: Optional[TrialConfig] = None,
    duration: float = 30.0,
) -> list[SweepPoint]:
    """Headline metrics vs vehicles per platoon (future-work scaling)."""
    base = base or TRIAL_3
    return [
        _measure(
            base.with_overrides(
                name=f"platoon{size}",
                platoon_size=size,
                duration=duration,
                enable_trace=False,
            ),
            float(size),
        )
        for size in sizes
    ]


def tdma_slot_ablation(
    slot_counts: Sequence[int] = (6, 8, 16, 32, 64),
    base: Optional[TrialConfig] = None,
    duration: float = 30.0,
) -> list[SweepPoint]:
    """Sensitivity of the TDMA results to the frame size (DESIGN.md X3).

    The qualitative claims (TDMA delay ≫ 802.11 delay; packet size does
    not affect delay) must hold at every point of this sweep.
    """
    base = base or TRIAL_1
    return [
        _measure(
            base.with_overrides(
                name=f"slots{count}",
                tdma_num_slots=count,
                duration=duration,
                enable_trace=False,
            ),
            float(count),
        )
        for count in slot_counts
    ]
