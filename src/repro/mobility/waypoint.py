"""setdest-style waypoint mobility (ns-2 ``$node setdest x y speed``)."""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.mobility.base import MobilityModel, Position


@dataclass
class _Segment:
    """One straight-line movement leg.

    Distance, duration, and end time are fixed once the leg is built, so
    they are computed eagerly — ``position_at`` runs on every channel
    transmission and must not redo the hypotenuse each call.
    """

    start_time: float
    x0: float
    y0: float
    x1: float
    y1: float
    speed: float
    distance: float = field(init=False)
    duration: float = field(init=False)
    end_time: float = field(init=False)

    def __post_init__(self) -> None:
        self.distance = math.hypot(self.x1 - self.x0, self.y1 - self.y0)
        if self.speed <= 0 or self.distance == 0:
            self.duration = 0.0
        else:
            self.duration = self.distance / self.speed
        self.end_time = self.start_time + self.duration

    def position_at(self, t: float) -> Position:
        if self.duration == 0 or t >= self.end_time:
            return (self.x1, self.y1)
        frac = max(0.0, (t - self.start_time)) / self.duration
        return (
            self.x0 + frac * (self.x1 - self.x0),
            self.y0 + frac * (self.y1 - self.y0),
        )


class WaypointMobility(MobilityModel):
    """Piecewise-linear motion driven by timed ``setdest`` commands.

    Commands must be added in non-decreasing time order; each command moves
    the node from wherever it is at that time toward the new destination at
    constant speed, then it rests there until the next command.
    """

    def __init__(self, x: float, y: float) -> None:
        self._initial: Position = (float(x), float(y))
        self._segments: list[_Segment] = []
        #: Segment start times, kept parallel to ``_segments`` so
        #: ``position`` can bisect instead of scanning every leg.
        self._start_times: list[float] = []

    def set_destination(self, at_time: float, x: float, y: float, speed: float) -> None:
        """Schedule a movement starting at ``at_time`` (ns-2 ``setdest``)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self._segments and at_time < self._segments[-1].start_time:
            raise ValueError(
                "waypoints must be added in non-decreasing time order"
            )
        x0, y0 = self.position(at_time)
        self._segments.append(
            _Segment(at_time, x0, y0, float(x), float(y), float(speed))
        )
        self._start_times.append(at_time)

    def position(self, t: float) -> Position:
        # The governing leg is the last one that has started by ``t``
        # (with equal start times the later command wins, as in the
        # original linear scan).
        i = bisect_right(self._start_times, t) - 1
        if i < 0:
            return self._initial
        return self._segments[i].position_at(t)

    def velocity(self, t: float) -> Position:
        active = None
        for seg in self._segments:
            if seg.start_time <= t < seg.end_time:
                active = seg
        if active is None or active.duration == 0:
            return (0.0, 0.0)
        return (
            (active.x1 - active.x0) / active.duration,
            (active.y1 - active.y0) / active.duration,
        )

    @property
    def waypoint_count(self) -> int:
        """Number of scheduled movement legs."""
        return len(self._segments)

    def arrival_time(self) -> float:
        """Time the final scheduled movement completes (0 if none)."""
        return self._segments[-1].end_time if self._segments else 0.0
