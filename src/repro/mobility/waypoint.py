"""setdest-style waypoint mobility (ns-2 ``$node setdest x y speed``)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mobility.base import MobilityModel, Position


@dataclass
class _Segment:
    """One straight-line movement leg."""

    start_time: float
    x0: float
    y0: float
    x1: float
    y1: float
    speed: float

    @property
    def distance(self) -> float:
        return math.hypot(self.x1 - self.x0, self.y1 - self.y0)

    @property
    def duration(self) -> float:
        if self.speed <= 0 or self.distance == 0:
            return 0.0
        return self.distance / self.speed

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def position_at(self, t: float) -> Position:
        if self.duration == 0 or t >= self.end_time:
            return (self.x1, self.y1)
        frac = max(0.0, (t - self.start_time)) / self.duration
        return (
            self.x0 + frac * (self.x1 - self.x0),
            self.y0 + frac * (self.y1 - self.y0),
        )


class WaypointMobility(MobilityModel):
    """Piecewise-linear motion driven by timed ``setdest`` commands.

    Commands must be added in non-decreasing time order; each command moves
    the node from wherever it is at that time toward the new destination at
    constant speed, then it rests there until the next command.
    """

    def __init__(self, x: float, y: float) -> None:
        self._initial: Position = (float(x), float(y))
        self._segments: list[_Segment] = []

    def set_destination(self, at_time: float, x: float, y: float, speed: float) -> None:
        """Schedule a movement starting at ``at_time`` (ns-2 ``setdest``)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self._segments and at_time < self._segments[-1].start_time:
            raise ValueError(
                "waypoints must be added in non-decreasing time order"
            )
        x0, y0 = self.position(at_time)
        self._segments.append(
            _Segment(at_time, x0, y0, float(x), float(y), float(speed))
        )

    def position(self, t: float) -> Position:
        current = self._initial
        for seg in self._segments:
            if t < seg.start_time:
                break
            current = seg.position_at(t)
        return current

    def velocity(self, t: float) -> Position:
        active = None
        for seg in self._segments:
            if seg.start_time <= t < seg.end_time:
                active = seg
        if active is None or active.duration == 0:
            return (0.0, 0.0)
        return (
            (active.x1 - active.x0) / active.duration,
            (active.y1 - active.y0) / active.duration,
        )

    @property
    def waypoint_count(self) -> int:
        """Number of scheduled movement legs."""
        return len(self._segments)

    def arrival_time(self) -> float:
        """Time the final scheduled movement completes (0 if none)."""
        return self._segments[-1].end_time if self._segments else 0.0
