"""Mobility model interface."""

from __future__ import annotations

import math
from typing import Tuple

Position = Tuple[float, float]


class MobilityModel:
    """Maps simulated time to a node position.

    Positions are metres in a flat 2-D plane (matching ns-2's wireless
    topography).  Models are *functional*: ``position(t)`` may be queried
    for any time, repeatedly, without side effects.
    """

    def position(self, t: float) -> Position:
        """Node position ``(x, y)`` at time ``t``."""
        raise NotImplementedError

    def velocity(self, t: float) -> Position:
        """Velocity vector at time ``t`` (numeric differentiation default)."""
        eps = 1e-3
        x0, y0 = self.position(max(0.0, t - eps))
        x1, y1 = self.position(t + eps)
        dt = (t + eps) - max(0.0, t - eps)
        return ((x1 - x0) / dt, (y1 - y0) / dt)

    def speed(self, t: float) -> float:
        """Scalar speed at time ``t``."""
        vx, vy = self.velocity(t)
        return math.hypot(vx, vy)


class StationaryMobility(MobilityModel):
    """A node that never moves."""

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)

    def position(self, t: float) -> Position:
        return (self.x, self.y)

    def velocity(self, t: float) -> Position:
        return (0.0, 0.0)
