"""Vehicle braking kinematics used by the safety analysis (paper §III.E).

The paper asks: a trailing vehicle travelling at 50 mph (22.4 m/s), 25 m
behind a braking leader, receives the first brake-warning packet after the
one-way delay *d* — how much of the separating gap has it consumed, and can
it still stop?  These helpers provide the constant-deceleration model that
analysis uses, including road/brake-condition factors.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Standard gravity, m/s².
GRAVITY = 9.80665

#: Typical coefficients of friction by road state (dry/wet/icy asphalt).
FRICTION_COEFFICIENTS = {
    "dry": 0.7,
    "wet": 0.4,
    "icy": 0.1,
}


def mph_to_mps(mph: float) -> float:
    """Convert miles per hour to metres per second."""
    return mph * 0.44704


def mps_to_mph(mps: float) -> float:
    """Convert metres per second to miles per hour."""
    return mps / 0.44704


def time_to_stop(speed: float, deceleration: float) -> float:
    """Seconds for a vehicle at ``speed`` to stop at ``deceleration`` m/s²."""
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if speed < 0:
        raise ValueError("speed must be non-negative")
    return speed / deceleration


def braking_distance(speed: float, deceleration: float) -> float:
    """Distance covered while braking from ``speed`` to rest: v²/(2a)."""
    if deceleration <= 0:
        raise ValueError("deceleration must be positive")
    if speed < 0:
        raise ValueError("speed must be non-negative")
    return speed * speed / (2.0 * deceleration)


def stopping_distance(
    speed: float,
    deceleration: float,
    reaction_time: float = 0.0,
) -> float:
    """Total stopping distance: reaction roll-out plus braking distance."""
    if reaction_time < 0:
        raise ValueError("reaction time must be non-negative")
    return speed * reaction_time + braking_distance(speed, deceleration)


def friction_deceleration(road: str = "dry", brake_efficiency: float = 1.0) -> float:
    """Achievable deceleration for a road state and brake condition.

    ``a = μ(road) · η(brakes) · g``.
    """
    if road not in FRICTION_COEFFICIENTS:
        raise ValueError(
            f"unknown road state {road!r}; expected one of "
            f"{sorted(FRICTION_COEFFICIENTS)}"
        )
    if not 0 < brake_efficiency <= 1:
        raise ValueError("brake_efficiency must be in (0, 1]")
    return FRICTION_COEFFICIENTS[road] * brake_efficiency * GRAVITY


@dataclass
class BrakingProfile:
    """Constant-deceleration braking episode starting at ``t0``.

    Provides position/speed along the (1-D) direction of travel, measured
    from the position at ``t0``.
    """

    t0: float
    initial_speed: float
    deceleration: float

    def __post_init__(self) -> None:
        if self.initial_speed < 0:
            raise ValueError("initial speed must be non-negative")
        if self.deceleration <= 0:
            raise ValueError("deceleration must be positive")

    @property
    def stop_time(self) -> float:
        """Absolute time at which the vehicle reaches rest."""
        return self.t0 + self.initial_speed / self.deceleration

    @property
    def total_distance(self) -> float:
        """Distance covered from ``t0`` until rest."""
        return braking_distance(self.initial_speed, self.deceleration)

    def speed_at(self, t: float) -> float:
        """Speed at absolute time ``t``."""
        if t <= self.t0:
            return self.initial_speed
        if t >= self.stop_time:
            return 0.0
        return self.initial_speed - self.deceleration * (t - self.t0)

    def distance_at(self, t: float) -> float:
        """Distance travelled since ``t0`` at absolute time ``t``."""
        if t <= self.t0:
            return 0.0
        if t >= self.stop_time:
            return self.total_distance
        dt = t - self.t0
        return self.initial_speed * dt - 0.5 * self.deceleration * dt * dt
