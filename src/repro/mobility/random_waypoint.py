"""Random-waypoint mobility (extension for larger scenarios).

The classic MANET mobility model: pick a uniform random point in the
simulation area, travel to it at a uniform random speed, pause, repeat.
The itinerary is pre-generated (deterministically from the seed) up to a
time horizon, so ``position(t)`` stays purely functional.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.mobility.base import Position
from repro.mobility.waypoint import WaypointMobility


class RandomWaypointMobility(WaypointMobility):
    """Pre-generated random-waypoint itinerary inside a rectangle."""

    def __init__(
        self,
        width: float,
        height: float,
        speed_range: tuple[float, float] = (1.0, 20.0),
        pause_time: float = 0.0,
        horizon: float = 1000.0,
        rng: Optional[random.Random] = None,
        start: Optional[Position] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("area dimensions must be positive")
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ValueError("speed_range must satisfy 0 < min <= max")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self._rng = rng or random.Random(0)
        if start is None:
            start = (self._rng.uniform(0, width), self._rng.uniform(0, height))
        super().__init__(*start)
        self.width = width
        self.height = height

        t = 0.0
        x, y = start
        import math

        while t < horizon:
            nx = self._rng.uniform(0, width)
            ny = self._rng.uniform(0, height)
            speed = self._rng.uniform(lo, hi)
            self.set_destination(t, nx, ny, speed)
            t += math.hypot(nx - x, ny - y) / speed + pause_time
            x, y = nx, ny
