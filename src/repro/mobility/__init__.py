"""Vehicle motion: waypoint paths, platoons, and braking kinematics."""

from repro.mobility.base import MobilityModel, StationaryMobility
from repro.mobility.kinematics import (
    BrakingProfile,
    mph_to_mps,
    mps_to_mph,
    stopping_distance,
    time_to_stop,
)
from repro.mobility.manhattan import ManhattanGridMobility
from repro.mobility.platoon import Platoon, PlatoonSpec
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.waypoint import WaypointMobility

__all__ = [
    "BrakingProfile",
    "ManhattanGridMobility",
    "MobilityModel",
    "Platoon",
    "PlatoonSpec",
    "RandomWaypointMobility",
    "StationaryMobility",
    "WaypointMobility",
    "mph_to_mps",
    "mps_to_mph",
    "stopping_distance",
    "time_to_stop",
]
