"""Coordinated platoon motion.

A platoon is a line of vehicles with fixed spacing behind a lead vehicle,
all sharing a heading.  Movement commands are issued to the lead and echoed
to every follower with its formation offset preserved — matching the
paper's two three-vehicle platoons that move and stop as units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.mobility.base import Position
from repro.mobility.waypoint import WaypointMobility


def _normalise(vec: Position) -> Position:
    norm = math.hypot(*vec)
    if norm == 0:
        raise ValueError("heading vector must be non-zero")
    return (vec[0] / norm, vec[1] / norm)


@dataclass
class PlatoonSpec:
    """Static description of a platoon formation."""

    #: Number of vehicles (the paper uses 3).
    size: int = 3
    #: Bumper-to-bumper spacing in metres (the paper uses 25 m).
    spacing: float = 25.0
    #: Lead vehicle's initial position.
    lead_position: Position = (0.0, 0.0)
    #: Unit direction of travel; followers trail behind along -heading.
    heading: Position = (0.0, 1.0)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("platoon size must be at least 1")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        self.heading = _normalise(self.heading)

    def initial_positions(self) -> list[Position]:
        """Positions of all vehicles, lead first."""
        hx, hy = self.heading
        lx, ly = self.lead_position
        return [
            (lx - index * self.spacing * hx, ly - index * self.spacing * hy)
            for index in range(self.size)
        ]


class Platoon:
    """A formation of :class:`WaypointMobility` vehicles moving in lockstep."""

    def __init__(self, spec: PlatoonSpec) -> None:
        self.spec = spec
        self.mobilities: list[WaypointMobility] = [
            WaypointMobility(x, y) for x, y in spec.initial_positions()
        ]

    def __len__(self) -> int:
        return len(self.mobilities)

    @property
    def lead(self) -> WaypointMobility:
        """The lead vehicle's mobility model."""
        return self.mobilities[0]

    def positions(self, t: float) -> list[Position]:
        """All vehicle positions at time ``t``, lead first."""
        return [m.position(t) for m in self.mobilities]

    def move_lead_to(
        self, at_time: float, destination: Position, speed: float
    ) -> None:
        """Move the whole platoon so the lead ends at ``destination``.

        Every follower receives the same displacement, preserving the
        formation (the platoon moves as a rigid body along its line).
        """
        lx, ly = self.lead.position(at_time)
        dx = destination[0] - lx
        dy = destination[1] - ly
        for mobility in self.mobilities:
            x, y = mobility.position(at_time)
            mobility.set_destination(at_time, x + dx, y + dy, speed)

    def advance(self, at_time: float, distance: float, speed: float) -> None:
        """Advance the platoon ``distance`` metres along its heading."""
        if distance <= 0:
            raise ValueError("distance must be positive")
        hx, hy = self.spec.heading
        lx, ly = self.lead.position(at_time)
        self.move_lead_to(
            at_time, (lx + distance * hx, ly + distance * hy), speed
        )

    def arrival_time(self) -> float:
        """Time the last vehicle finishes its final scheduled movement."""
        return max(m.arrival_time() for m in self.mobilities)
