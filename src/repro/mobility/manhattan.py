"""Manhattan-grid mobility: motion constrained to an urban street grid.

The classic urban VANET model: vehicles travel along the lines of a
rectangular street grid, choosing at every intersection to continue
straight or turn.  The itinerary is pre-generated deterministically from
the seed (like :class:`~repro.mobility.random_waypoint.RandomWaypointMobility`)
so positions stay purely functional.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.mobility.waypoint import WaypointMobility

#: Unit direction vectors, clockwise.
_DIRECTIONS = ((1, 0), (0, -1), (-1, 0), (0, 1))


class ManhattanGridMobility(WaypointMobility):
    """Drive block to block on a ``blocks_x`` × ``blocks_y`` street grid.

    Parameters
    ----------
    blocks_x / blocks_y:
        Number of blocks per axis (the grid has ``blocks+1`` streets).
    block_size:
        Street spacing, metres.
    speed:
        Constant driving speed, m/s.
    turn_probability:
        Chance of turning (left or right equally) at each intersection
        when going straight is possible.
    horizon:
        Simulated time to pre-generate, seconds.
    """

    def __init__(
        self,
        blocks_x: int = 5,
        blocks_y: int = 5,
        block_size: float = 100.0,
        speed: float = 13.9,
        turn_probability: float = 0.5,
        horizon: float = 1000.0,
        rng: Optional[random.Random] = None,
        start: Optional[tuple[int, int]] = None,
    ) -> None:
        if blocks_x < 1 or blocks_y < 1:
            raise ValueError("the grid needs at least one block per axis")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not 0 <= turn_probability <= 1:
            raise ValueError("turn_probability must be in [0, 1]")
        self.blocks_x = blocks_x
        self.blocks_y = blocks_y
        self.block_size = block_size
        self._rng = rng or random.Random(0)

        if start is None:
            col = self._rng.randint(0, blocks_x)
            row = self._rng.randint(0, blocks_y)
        else:
            col, row = start
            if not (0 <= col <= blocks_x and 0 <= row <= blocks_y):
                raise ValueError("start intersection outside the grid")

        super().__init__(col * block_size, row * block_size)

        direction = self._rng.randrange(4)
        t = 0.0
        block_time = block_size / speed
        while t < horizon:
            direction = self._choose_direction(col, row, direction,
                                               turn_probability)
            dx, dy = _DIRECTIONS[direction]
            col += dx
            row += dy
            self.set_destination(
                t, col * block_size, row * block_size, speed
            )
            t += block_time

    def _legal(self, col: int, row: int, direction: int) -> bool:
        dx, dy = _DIRECTIONS[direction]
        return (
            0 <= col + dx <= self.blocks_x and 0 <= row + dy <= self.blocks_y
        )

    def _choose_direction(
        self, col: int, row: int, current: int, turn_probability: float
    ) -> int:
        left = (current - 1) % 4
        right = (current + 1) % 4
        options: list[int] = []
        if self._legal(col, row, current) and (
            self._rng.random() >= turn_probability
        ):
            return current
        for candidate in (left, right, current):
            if self._legal(col, row, candidate):
                options.append(candidate)
        if not options:
            # Dead end (grid corner facing outward): U-turn.
            return (current + 2) % 4
        return self._rng.choice(options)

    def on_grid(self, t: float, tolerance: float = 1e-6) -> bool:
        """True if the position at ``t`` lies on a street line."""
        x, y = self.position(t)
        on_vertical = abs(x / self.block_size - round(x / self.block_size)) \
            * self.block_size <= tolerance
        on_horizontal = abs(y / self.block_size - round(y / self.block_size)) \
            * self.block_size <= tolerance
        return on_vertical or on_horizontal
