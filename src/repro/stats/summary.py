"""Summaries: the paper's avg/min/max triple plus tail percentiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SeriesSummary:
    """avg/min/max of a series (the triple the paper tabulates)."""

    count: int
    average: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} avg={self.average:.4f} "
            f"min={self.minimum:.4f} max={self.maximum:.4f}"
        )


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summarise a non-empty sequence of values."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    return SeriesSummary(
        count=len(values),
        average=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Safety analyses care about the delay *tail* (p95/p99 of the warning
    latency), which avg/min/max hides.
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty series")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> dict[float, float]:
    """Several percentiles at once (default: the latency-tail trio)."""
    return {q: percentile(values, q) for q in qs}
