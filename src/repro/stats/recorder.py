"""Periodic throughput sampler — the Python twin of the paper's Tcl code:

.. code-block:: tcl

    set time .5
    set bw [$tcpsink set bytes_]
    set now [$ns_ now]
    puts $thrufd "$now [expr $bw/$time*8/1000000]"
    $ns_ at [expr $now+$time] "record"

Every ``interval`` the recorder reads the sink's cumulative byte counter,
converts the delta to Mbit/s, and appends a sample.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.stats.throughput import ThroughputSample, ThroughputSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class ThroughputRecorder:
    """Samples one or more byte counters on a fixed period.

    Parameters
    ----------
    env:
        Simulation environment.
    bytes_fn:
        Zero-argument callable returning the cumulative byte count — e.g.
        ``lambda: sink.bytes``, or a sum over several sinks for a
        platoon-level series.
    interval:
        Sampling period, seconds.
    """

    def __init__(
        self,
        env: "Environment",
        bytes_fn: Callable[[], int],
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.bytes_fn = bytes_fn
        self.interval = interval
        self.samples: list[ThroughputSample] = []
        self._last_bytes = 0
        self._started = False

    @classmethod
    def for_sinks(
        cls, env: "Environment", sinks: Sequence[object], interval: float = 0.5
    ) -> "ThroughputRecorder":
        """Recorder over the summed byte counters of several sinks."""
        return cls(
            env, lambda: sum(getattr(s, "bytes") for s in sinks), interval
        )

    def start(self, at: float = 0.0) -> None:
        """Begin sampling at time ``at`` (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run(at))

    def _run(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self._last_bytes = self.bytes_fn()
        while True:
            yield self.env.timeout(self.interval)
            current = self.bytes_fn()
            delta = current - self._last_bytes
            self._last_bytes = current
            mbps = delta / self.interval * 8.0 / 1e6
            self.samples.append(ThroughputSample(time=self.env.now, mbps=mbps))

    def series(self) -> ThroughputSeries:
        """The samples collected so far as a :class:`ThroughputSeries`."""
        return ThroughputSeries(self.samples)
