"""Confidence-interval analysis of throughput (paper §III.B-D).

The paper reports, for each trial, that "the actual average throughput is
within X Mbps of the observed value, with a 95% confidence and a Y%
relative precision".  :func:`mean_confidence_interval` computes exactly
that triple (mean, half-width, relative precision) with a Student-t
interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ConfidenceResult:
    """A mean with its confidence half-width."""

    mean: float
    half_width: float
    level: float
    n: int

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    @property
    def relative_precision(self) -> float:
        """Half-width as a fraction of the mean (the paper's Y%)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.half_width:.4f} "
            f"({self.level * 100:.0f}% CI, "
            f"{self.relative_precision * 100:.1f}% relative precision, n={self.n})"
        )


def mean_confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> ConfidenceResult:
    """Student-t confidence interval for the mean of ``values``."""
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    n = len(values)
    if n < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std_err = math.sqrt(variance / n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
    return ConfidenceResult(
        mean=mean, half_width=t_crit * std_err, level=level, n=n
    )


def required_samples(
    values: Sequence[float], target_relative_precision: float, level: float = 0.95
) -> int:
    """Estimate how many samples reach a target relative precision.

    Uses the normal approximation n ≈ (z·s / (r·mean))²; useful when
    planning longer runs for tighter intervals.
    """
    if not 0 < target_relative_precision < 1:
        raise ValueError("target_relative_precision must be in (0, 1)")
    result = mean_confidence_interval(values, level)
    if result.mean == 0:
        raise ValueError("cannot target relative precision of a zero mean")
    n = len(values)
    variance = sum((v - result.mean) ** 2 for v in values) / (n - 1)
    z = float(_scipy_stats.norm.ppf(0.5 + level / 2.0))
    needed = (z * math.sqrt(variance) / (
        target_relative_precision * abs(result.mean)
    )) ** 2
    return max(2, math.ceil(needed))
