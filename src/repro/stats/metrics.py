"""Additional network metrics beyond the paper's delay/throughput pair.

* :func:`rfc3550_jitter` — the RTP interarrival-jitter estimator.
* :func:`delay_jitter_series` — per-packet delay variation.
* :func:`packet_delivery_ratio` — delivered / originated, from a trace.
* :func:`hop_count_stats` — forwarding path lengths, from a trace.
* :func:`routing_overhead` — control bytes per delivered data byte.

These are the metrics VANET follow-up studies routinely add; they all
work off the same sink records / trace files as the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.stats.delay import DelaySeries
from repro.stats.summary import SeriesSummary, summarize
from repro.trace.events import TraceRecord

#: Packet types counted as routing control traffic.
CONTROL_PTYPES = ("aodv", "dsdv")
#: Packet types counted as application data.
DATA_PTYPES = ("tcp", "cbr", "udp", "ebl")


def delay_jitter_series(delays: DelaySeries) -> list[float]:
    """Absolute successive delay differences |d_i - d_{i-1}|."""
    values = delays.delays
    return [abs(b - a) for a, b in zip(values, values[1:])]


def jitter_summary(delays: DelaySeries) -> SeriesSummary:
    """avg/min/max of the delay-variation series."""
    series = delay_jitter_series(delays)
    if not series:
        raise ValueError("need at least two delay samples for jitter")
    return summarize(series)


def rfc3550_jitter(delays: DelaySeries) -> float:
    """RFC 3550 §6.4.1 smoothed interarrival jitter, seconds.

    ``J += (|D(i-1, i)| - J) / 16`` with D the delay difference between
    consecutive packets.
    """
    jitter = 0.0
    values = delays.delays
    for previous, current in zip(values, values[1:]):
        jitter += (abs(current - previous) - jitter) / 16.0
    return jitter


@dataclass(frozen=True)
class DeliveryStats:
    """Origination/delivery accounting for one traffic class."""

    originated: int
    delivered: int
    dropped: int

    @property
    def ratio(self) -> float:
        """Delivered / originated (1.0 when nothing was originated)."""
        if self.originated == 0:
            return 1.0
        return self.delivered / self.originated


def packet_delivery_ratio(
    records: Iterable[TraceRecord],
    ptypes: Sequence[str] = DATA_PTYPES,
    src_node: Optional[int] = None,
) -> DeliveryStats:
    """PDR computed the trace way: unique uids sent at AGT vs received.

    Retransmissions share a uid with the original, so counting unique
    uids avoids over-counting originations.
    """
    sent: set[int] = set()
    received: set[int] = set()
    dropped = 0
    for rec in records:
        if rec.ptype not in ptypes:
            continue
        if rec.event == "s" and rec.layer == "AGT":
            if src_node is None or rec.node == src_node:
                sent.add(rec.uid)
        elif rec.event == "r" and rec.layer == "AGT":
            received.add(rec.uid)
        elif rec.event == "D":
            dropped += 1
    return DeliveryStats(
        originated=len(sent),
        delivered=len(sent & received),
        dropped=dropped,
    )


def hop_count_stats(records: Iterable[TraceRecord]) -> SeriesSummary:
    """Path lengths of delivered data packets (1 + forward events)."""
    forwards: dict[int, int] = {}
    delivered: list[int] = []
    for rec in records:
        if rec.ptype not in DATA_PTYPES:
            continue
        if rec.event == "f":
            forwards[rec.uid] = forwards.get(rec.uid, 0) + 1
        elif rec.event == "r" and rec.layer == "AGT":
            delivered.append(rec.uid)
    if not delivered:
        raise ValueError("no delivered data packets in the trace")
    return summarize([1 + forwards.get(uid, 0) for uid in delivered])


def routing_overhead(records: Iterable[TraceRecord]) -> float:
    """Control bytes transmitted per data byte delivered (lower = better).

    Returns ``inf`` when control traffic exists but no data arrived.
    """
    control_bytes = 0
    data_bytes = 0
    for rec in records:
        if rec.event == "s" and rec.layer == "RTR" and rec.ptype in CONTROL_PTYPES:
            control_bytes += rec.size
        elif rec.event == "r" and rec.layer == "AGT" and rec.ptype in DATA_PTYPES:
            data_bytes += rec.size
    if data_bytes == 0:
        return float("inf") if control_bytes else 0.0
    return control_bytes / data_bytes
