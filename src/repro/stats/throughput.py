"""Throughput time series (the paper's Figs. 7/10/15)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.stats.summary import SeriesSummary, summarize


@dataclass(frozen=True)
class ThroughputSample:
    """Throughput over one sampling interval ending at ``time``."""

    time: float
    mbps: float


class ThroughputSeries:
    """Time-ordered throughput samples in Mbit/s."""

    def __init__(self, samples: Sequence[ThroughputSample]) -> None:
        self.samples = list(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @property
    def times(self) -> list[float]:
        """Sample times, seconds."""
        return [s.time for s in self.samples]

    @property
    def values(self) -> list[float]:
        """Sample values, Mbit/s."""
        return [s.mbps for s in self.samples]

    def summary(self) -> SeriesSummary:
        """avg/min/max over all samples (the paper's reported triple)."""
        return summarize(self.values)

    def busy_summary(self) -> SeriesSummary:
        """avg/min/max over the samples after traffic first appears.

        The paper's plots include a leading idle period (vehicles not yet
        communicating); its min of "0 Mbps" comes from brief stalls during
        the active phase, so analyses sometimes want the active window
        only.
        """
        active = self.values
        first = next((i for i, v in enumerate(active) if v > 0), None)
        if first is None:
            return self.summary()
        return summarize(active[first:])

    def start_of_traffic(self) -> float:
        """Time of the first non-zero sample (Fig. 7's "begin communicating
        at approximately N seconds" observation)."""
        for sample in self.samples:
            if sample.mbps > 0:
                return sample.time
        return float("inf")

    def total_megabits(self) -> float:
        """Integral of the series: total traffic carried, Mbit."""
        total = 0.0
        prev_time = 0.0
        for sample in self.samples:
            total += sample.mbps * (sample.time - prev_time)
            prev_time = sample.time
        return total
