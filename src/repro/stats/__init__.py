"""Metrics: one-way delay, throughput, and confidence analysis."""

from repro.stats.confidence import ConfidenceResult, mean_confidence_interval
from repro.stats.delay import DelaySample, DelaySeries, delays_from_trace
from repro.stats.metrics import (
    DeliveryStats,
    hop_count_stats,
    jitter_summary,
    packet_delivery_ratio,
    rfc3550_jitter,
    routing_overhead,
)
from repro.stats.recorder import ThroughputRecorder
from repro.stats.resilience import (
    ResilienceReport,
    WarningOutcome,
    recovery_latencies,
    warning_delivery_probability,
)
from repro.stats.summary import (
    SeriesSummary,
    percentile,
    percentiles,
    summarize,
)
from repro.stats.throughput import ThroughputSample, ThroughputSeries

__all__ = [
    "ConfidenceResult",
    "DelaySample",
    "DeliveryStats",
    "hop_count_stats",
    "jitter_summary",
    "packet_delivery_ratio",
    "percentile",
    "percentiles",
    "rfc3550_jitter",
    "routing_overhead",
    "DelaySeries",
    "ResilienceReport",
    "SeriesSummary",
    "ThroughputRecorder",
    "ThroughputSample",
    "ThroughputSeries",
    "WarningOutcome",
    "delays_from_trace",
    "mean_confidence_interval",
    "recovery_latencies",
    "summarize",
    "warning_delivery_probability",
]
