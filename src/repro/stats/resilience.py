"""Resilience metrics: how the warning stream behaves under faults.

The paper's safety analysis (§III.E) asks one question of a clean
network: *how late is the first brake warning?*  Under fault injection
(:mod:`repro.faults`) that question splits into three:

* **warning-delivery probability** — the fraction of initial warnings
  that arrived at all, and within their safety deadline;
* **recovery latency** — how long after each fault injection the stream
  next delivered a packet (how fast the network healed);
* **initial-delay-under-fault distribution** — the paper's headline
  metric, but as a distribution over faulted trials rather than a single
  clean-network number.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.stats.summary import SeriesSummary, summarize


@dataclass(frozen=True)
class WarningOutcome:
    """One initial warning's fate.

    ``delay`` is the one-way delay of the episode's first delivered
    packet, or ``nan`` when nothing ever arrived; ``deadline`` is the
    safety budget it had to beat (e.g. spacing/speed — the time until
    the follower eats the gap).
    """

    delay: float
    deadline: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.deadline) or self.deadline <= 0:
            raise ValueError("deadline must be finite and positive")

    @property
    def arrived(self) -> bool:
        """True if the warning was delivered at all."""
        return math.isfinite(self.delay)

    @property
    def delivered(self) -> bool:
        """True if the warning arrived within its safety deadline."""
        return self.arrived and self.delay <= self.deadline


def warning_delivery_probability(outcomes: Sequence[WarningOutcome]) -> float:
    """Fraction of initial warnings delivered within their deadline."""
    if not outcomes:
        raise ValueError("no warning outcomes to summarize")
    delivered = sum(1 for outcome in outcomes if outcome.delivered)
    return delivered / len(outcomes)


def recovery_latencies(
    fault_times: Sequence[float],
    delivery_times: Sequence[float],
) -> list[float]:
    """Time from each fault injection to the next delivered packet.

    Faults after the last delivery yield no latency (the network never
    demonstrably recovered within the run), so the result may be shorter
    than ``fault_times``.
    """
    ordered = sorted(delivery_times)
    latencies: list[float] = []
    for fault_time in fault_times:
        index = bisect_left(ordered, fault_time)
        if index < len(ordered):
            latencies.append(ordered[index] - fault_time)
    return latencies


@dataclass(frozen=True)
class ResilienceReport:
    """The resilience metric bundle for one (usually faulted) trial."""

    outcomes: tuple[WarningOutcome, ...]
    recovery: tuple[float, ...]

    @property
    def delivery_probability(self) -> float:
        """Warning-delivery probability across the trial's episodes."""
        return warning_delivery_probability(self.outcomes)

    def delay_summary(self) -> Optional[SeriesSummary]:
        """avg/min/max initial delay over warnings that arrived, if any."""
        delays = [o.delay for o in self.outcomes if o.arrived]
        if not delays:
            return None
        return summarize(delays)

    def recovery_summary(self) -> Optional[SeriesSummary]:
        """avg/min/max recovery latency, if any fault recovered."""
        if not self.recovery:
            return None
        return summarize(list(self.recovery))
