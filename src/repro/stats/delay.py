"""One-way delay analysis (the paper's Figs. 5/6/8/9/11-14).

The paper plots per-packet one-way delay against packet ID, identifies a
*transient state* (route discovery + TCP ramp-up) followed by a *steady
state*, and reports avg/min/max per receiving vehicle.  This module
reproduces that pipeline from sink records or from a parsed trace file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.stats.summary import SeriesSummary, summarize
from repro.trace.events import TraceRecord


@dataclass(frozen=True)
class DelaySample:
    """One received packet's delay, indexed by packet ID."""

    packet_id: int
    sent_at: float
    received_at: float

    @property
    def delay(self) -> float:
        """One-way delay, seconds."""
        return self.received_at - self.sent_at


class DelaySeries:
    """Ordered per-packet one-way delays with transient/steady analysis."""

    def __init__(self, samples: Sequence[DelaySample]) -> None:
        self.samples = list(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    @classmethod
    def from_records(cls, records: Iterable) -> "DelaySeries":
        """Build from sink ``ReceivedRecord`` objects (seqno → packet ID)."""
        samples = [
            DelaySample(
                packet_id=index,
                sent_at=rec.sent_at,
                received_at=rec.received_at,
            )
            for index, rec in enumerate(records)
        ]
        return cls(samples)

    @property
    def delays(self) -> list[float]:
        """Just the delay values, in packet-ID order."""
        return [s.delay for s in self.samples]

    def summary(self) -> SeriesSummary:
        """avg/min/max over the whole series."""
        return summarize(self.delays)

    def percentiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> dict[float, float]:
        """Tail percentiles of the delay distribution."""
        from repro.stats.summary import percentiles as _percentiles

        return _percentiles(self.delays, qs)

    @property
    def initial_delay(self) -> float:
        """Delay of the very first packet — the paper's safety-analysis
        input (first indication that the lead vehicle is braking)."""
        if not self.samples:
            raise ValueError("empty delay series")
        return self.samples[0].delay

    # -- transient / steady-state split ---------------------------------------

    def transient_length(
        self, window: int = 10, tolerance: float = 0.25
    ) -> int:
        """Number of leading packets in the transient state.

        The steady state begins at the first packet where the
        ``window``-packet moving average stays within ``tolerance``
        (relative) of the tail average for the rest of the series.  Falls
        back to half the series if no knee is found.
        """
        n = len(self.samples)
        if n < 2 * window:
            return 0
        delays = self.delays
        tail = delays[n // 2 :]
        target = sum(tail) / len(tail)
        if target <= 0:
            return 0
        for start in range(0, n - window):
            avg = sum(delays[start : start + window]) / window
            if abs(avg - target) <= tolerance * target:
                return start
        return n // 2

    def transient(self, window: int = 10, tolerance: float = 0.25) -> "DelaySeries":
        """The transient-state prefix (Figs. 6/9/12/14)."""
        return DelaySeries(self.samples[: self.transient_length(window, tolerance)])

    def steady_state(
        self, window: int = 10, tolerance: float = 0.25
    ) -> "DelaySeries":
        """The steady-state suffix."""
        return DelaySeries(self.samples[self.transient_length(window, tolerance) :])

    def steady_state_level(self) -> float:
        """Average delay once the series has settled."""
        steady = self.steady_state()
        series = steady if len(steady) else self
        return series.summary().average


def delays_from_trace(
    records: Iterable[TraceRecord],
    dst_node: int,
    ptype: str = "tcp",
    src_node: Optional[int] = None,
) -> DelaySeries:
    """Offline delay computation by trace parsing (the authors' method).

    Pairs each agent-layer reception at ``dst_node`` with the packet's
    originating timestamp carried in the trace line.
    """
    samples = []
    index = 0
    for rec in records:
        if rec.event != "r" or rec.layer != "AGT" or rec.node != dst_node:
            continue
        if rec.ptype != ptype:
            continue
        if src_node is not None and rec.src != src_node:
            continue
        samples.append(
            DelaySample(
                packet_id=index, sent_at=rec.timestamp, received_at=rec.time
            )
        )
        index += 1
    return DelaySeries(samples)
