"""repro — a pure-Python IVC MANET simulator reproducing the Extended
Brake Lights (EBL) study of Watson, Pellerito, Gladden & Fu (2007).

The package is layered bottom-up:

* :mod:`repro.des` — discrete-event simulation kernel.
* :mod:`repro.net` — packets, queues, channel, node/stack plumbing.
* :mod:`repro.phy` — radio and propagation models.
* :mod:`repro.mac` — 802.11 DCF, TDMA, and CSMA MAC layers.
* :mod:`repro.routing` — AODV plus baseline routing protocols.
* :mod:`repro.transport` — TCP/UDP agents and traffic applications.
* :mod:`repro.mobility` — waypoint/platoon vehicle motion.
* :mod:`repro.trace` — ns-2-style trace emission and parsing.
* :mod:`repro.stats` — delay/throughput metrics and confidence analysis.
* :mod:`repro.obs` — cross-layer telemetry: metric registry, packet
  journeys, run introspection (no-op unless a trial enables it).
* :mod:`repro.core` — the EBL scenario, trials, runner, and safety analysis.
* :mod:`repro.experiments` — per-figure/table reproduction harness.

The top-level namespace lazily re-exports the observability entry points
(:class:`~repro.obs.MetricRegistry`, :class:`~repro.obs.JourneyTracker`,
:class:`~repro.obs.ObservabilityConfig`, :class:`~repro.obs.Observability`)
so telemetry consumers do not need to know the submodule layout; the
import is deferred (PEP 562) to keep ``import repro`` free of any stack
machinery.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static-analysis aliases only
    from repro.obs import (  # noqa: F401
        JourneyTracker,
        MetricRegistry,
        Observability,
        ObservabilityConfig,
    )

__version__ = "1.0.0"

#: Names resolved lazily from :mod:`repro.obs` on first attribute access.
_OBS_EXPORTS = frozenset(
    {"MetricRegistry", "JourneyTracker", "ObservabilityConfig", "Observability"}
)

__all__ = ["__version__", *sorted(_OBS_EXPORTS)]


def __getattr__(name: str):
    if name in _OBS_EXPORTS:
        from repro import obs

        return getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | _OBS_EXPORTS)
