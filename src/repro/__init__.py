"""repro — a pure-Python IVC MANET simulator reproducing the Extended
Brake Lights (EBL) study of Watson, Pellerito, Gladden & Fu (2007).

The package is layered bottom-up:

* :mod:`repro.des` — discrete-event simulation kernel.
* :mod:`repro.net` — packets, queues, channel, node/stack plumbing.
* :mod:`repro.phy` — radio and propagation models.
* :mod:`repro.mac` — 802.11 DCF, TDMA, and CSMA MAC layers.
* :mod:`repro.routing` — AODV plus baseline routing protocols.
* :mod:`repro.transport` — TCP/UDP agents and traffic applications.
* :mod:`repro.mobility` — waypoint/platoon vehicle motion.
* :mod:`repro.trace` — ns-2-style trace emission and parsing.
* :mod:`repro.stats` — delay/throughput metrics and confidence analysis.
* :mod:`repro.core` — the EBL scenario, trials, runner, and safety analysis.
* :mod:`repro.experiments` — per-figure/table reproduction harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
