"""Radio physical layer: propagation models and the wireless transceiver."""

from repro.phy.energy import EnergyModel, EnergyParams
from repro.phy.error_models import (
    DistanceDependentErrorModel,
    ErrorModel,
    GilbertElliotErrorModel,
    UniformErrorModel,
)
from repro.phy.propagation import (
    FreeSpace,
    LogNormalShadowing,
    PropagationModel,
    TwoRayGround,
)
from repro.phy.radio import RadioParams, WirelessPhy

__all__ = [
    "DistanceDependentErrorModel",
    "EnergyModel",
    "EnergyParams",
    "ErrorModel",
    "FreeSpace",
    "GilbertElliotErrorModel",
    "UniformErrorModel",
    "LogNormalShadowing",
    "PropagationModel",
    "RadioParams",
    "TwoRayGround",
    "WirelessPhy",
]
