"""The wireless transceiver (ns-2 ``Phy/WirelessPhy`` equivalent).

The phy tracks every signal currently impinging on the antenna, decides
which (if any) frame is being successfully decoded, models co-channel
collisions and power capture, and exposes carrier-sense state to the MAC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.des.events import DeferredCall, Event
from repro.net.packet import Packet
from repro.obs import api as obs
from repro.perf.fastpath import FASTPATH
from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel, TwoRayGround
from repro.sanitizer import api as san

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


@dataclass
class RadioParams:
    """Radio constants; defaults are ns-2's 914 MHz WaveLAN profile.

    With two-ray ground propagation these yield the classic 250 m
    communication range and 550 m carrier-sense range.
    """

    #: Carrier frequency, Hz.
    frequency: float = 914e6
    #: Transmit power, W.
    tx_power: float = 0.28183815
    #: Receive (decode) threshold, W — 250 m under two-ray ground.
    rx_threshold: float = 3.652e-10
    #: Carrier-sense threshold, W — 550 m under two-ray ground.
    cs_threshold: float = 1.559e-11
    #: Capture threshold (power ratio, linear). 10 = 10 dB.
    capture_ratio: float = 10.0
    #: Channel bit rate for the data portion of frames, bit/s.
    bitrate: float = 2e6
    #: Antenna gains and heights, system loss (ns-2 defaults).
    tx_gain: float = 1.0
    rx_gain: float = 1.0
    antenna_height: float = 1.5
    system_loss: float = 1.0
    #: Reception model.  False (default): ns-2-style pairwise capture —
    #: the strongest frame survives if it beats each interferer by
    #: ``capture_ratio``.  True: cumulative SINR — a frame survives only
    #: while its power over the *sum* of all interferers plus the noise
    #: floor stays at or above ``sinr_threshold``.
    sinr_mode: bool = False
    #: Minimum signal-to-interference-plus-noise ratio (linear) for a
    #: decodable frame in SINR mode. 10 = 10 dB.
    sinr_threshold: float = 10.0
    #: Thermal-noise floor, watts (≈ -101 dBm over a 2 MHz channel).
    noise_floor: float = 8e-14
    #: Receiver-sensitivity offsets (dB, relative to ``rx_threshold``)
    #: for multi-rate frames: higher modulations need more signal.
    #: Values follow typical 802.11b radios (1 Mb/s: -94 dBm ... 11 Mb/s:
    #: -85 dBm, relative to 2 Mb/s at -91 dBm).
    rate_sensitivity_db: dict = field(
        default_factory=lambda: {1e6: -3.0, 2e6: 0.0, 5.5e6: 4.0, 11e6: 6.0}
    )
    #: Memo of ``10 ** (offset_db / 10)`` per rate — the threshold lookup
    #: runs once per signal classified, and the power-of-ten is constant
    #: for a given sensitivity table.
    _rate_factor_memo: dict = field(default_factory=dict, init=False, repr=False)

    @property
    def wavelength(self) -> float:
        """Carrier wavelength, metres."""
        return SPEED_OF_LIGHT / self.frequency

    def rx_threshold_for(self, rate: Optional[float]) -> float:
        """Decode threshold for a frame sent at ``rate`` bit/s."""
        if rate is None:
            return self.rx_threshold
        factor = self._rate_factor_memo.get(rate)
        if factor is None:
            offset_db = self.rate_sensitivity_db.get(rate, 0.0)
            factor = 10.0 ** (offset_db / 10.0)
            self._rate_factor_memo[rate] = factor
        return self.rx_threshold * factor


@(dataclass(slots=True) if FASTPATH else dataclass)
class _Signal:
    """One signal currently on the air at this receiver."""

    pkt: Packet
    power: float
    end_time: float
    corrupted: bool = False
    decoding: bool = False
    distance: float = 0.0


class WirelessPhy:
    """Half-duplex radio attached to one node.

    Parameters
    ----------
    env:
        Simulation environment.
    position_fn:
        Zero-argument callable returning the node's current ``(x, y)``.
    params:
        Radio constants.
    propagation:
        Path-loss model shared with the channel.
    """

    def __init__(
        self,
        env: "Environment",
        position_fn: Callable[[], tuple[float, float]],
        params: Optional[RadioParams] = None,
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.env = env
        self.position_fn = position_fn
        self.params = params or RadioParams()
        self.propagation = propagation or TwoRayGround()
        #: The MAC above us; set by the MAC's constructor.
        self.mac = None
        #: The channel we are attached to; set by Channel.attach().
        self.channel = None
        #: Optional random-impairment model applied to otherwise-good
        #: frames (see :mod:`repro.phy.error_models`).
        self.error_model = None
        #: Optional :class:`~repro.phy.energy.EnergyModel` charged for
        #: transmit/receive airtime.
        self.energy = None
        self._signals: list[_Signal] = []
        #: Fast path: ``(time, position)`` memo for :attr:`position`.
        #: Mobility models are functional — ``position(t)`` has no side
        #: effects — so within one timestep the answer cannot change.
        self._pos_memo: Optional[tuple[float, tuple[float, float]]] = None
        self._current: Optional[_Signal] = None
        self._tx_end_time = 0.0
        self._idle_waiters: list[Event] = []
        #: Incremented whenever new energy appears on the medium (a signal
        #: arrives or we start transmitting).  MACs compare epochs across a
        #: timed wait to detect that the medium was disturbed meanwhile.
        self.busy_epoch = 0
        #: False while the node is crashed: the radio neither emits nor
        #: decodes, but stays attached so it can come back.
        self.up = True
        #: Overlapping-crash refcount behind :meth:`fail`/:meth:`recover`:
        #: the radio only comes back up when every outstanding failure
        #: window has ended.
        self._down_count = 0
        self._ledger = san.packet_ledger()
        #: Transmit-power multiplier in (0, 1]; < 1 models a power droop.
        self.power_scale = 1.0
        #: Statistics.
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_corrupted = 0
        self.frames_dropped_down = 0
        self._obs_sent = obs.counter("phy.frames.sent")
        self._obs_recv = obs.counter("phy.frames.received")
        self._obs_corrupt = obs.counter("phy.frames.corrupted")
        self._obs_dropped_down = obs.counter("phy.frames.dropped_down")

    # -- geometry ------------------------------------------------------------

    @property
    def position(self) -> tuple[float, float]:
        """Current antenna position (metres)."""
        if FASTPATH:
            memo = self._pos_memo
            now = self.env.now
            if memo is not None and memo[0] == now:
                return memo[1]
            pos = self.position_fn()
            self._pos_memo = (now, pos)
            return pos
        return self.position_fn()

    def distance_to(self, other: "WirelessPhy") -> float:
        """Euclidean distance to another phy, metres."""
        (x1, y1), (x2, y2) = self.position, other.position
        return math.hypot(x2 - x1, y2 - y1)

    # -- fault state ---------------------------------------------------------

    @property
    def tx_power(self) -> float:
        """Effective transmit power, W (nominal power times droop scale)."""
        return self.params.tx_power * self.power_scale

    def fail(self) -> None:
        """Take the radio down (node crash): abandon all in-flight frames."""
        self._down_count += 1
        if not self.up:
            return
        self.up = False
        ledger = self._ledger
        for signal in self._signals:
            signal.corrupted = True
            signal.decoding = False
            if ledger is not None:
                ledger.note(signal.pkt, "rx-down", self.env.now)
        self._current = None

    def recover(self) -> None:
        """Bring the radio back up after a crash.

        Refcounted against :meth:`fail`: with overlapping failure windows
        only the last :meth:`recover` actually restores the radio.
        """
        if self._down_count > 0:
            self._down_count -= 1
        if self._down_count == 0:
            self.up = True

    # -- carrier sense ---------------------------------------------------------

    @property
    def transmitting(self) -> bool:
        """True while this radio is emitting a frame."""
        return self.env.now < self._tx_end_time

    @property
    def medium_busy(self) -> bool:
        """True if we are transmitting or sensing any signal energy."""
        # ``transmitting`` inlined: this is polled from every MAC wait loop.
        return bool(self._signals) or self.env.now < self._tx_end_time

    def wait_idle(self) -> Event:
        """Event that fires as soon as the medium is (or becomes) idle."""
        event = Event(self.env)
        if not self.medium_busy:
            event.succeed()
        else:
            self._idle_waiters.append(event)
        return event

    def _notify_if_idle(self) -> None:
        if not self.medium_busy and self._idle_waiters:
            waiters, self._idle_waiters = self._idle_waiters, []
            for event in waiters:
                event.succeed()

    # -- transmit --------------------------------------------------------------

    def transmit(self, pkt: Packet, duration: float) -> None:
        """Emit ``pkt`` for ``duration`` seconds onto the channel."""
        if self.channel is None:
            raise RuntimeError("phy is not attached to a channel")
        if not self.up:
            # Crashed node: the frame silently never makes it to the air.
            self.frames_dropped_down += 1
            self._obs_dropped_down.inc()
            if self._ledger is not None:
                self._ledger.note(pkt, "tx-down", self.env.now)
            return
        if self.transmitting:
            raise RuntimeError("radio is already transmitting")
        if self._current is not None:
            # Transmit stomps any in-progress reception (half duplex).
            self._current.corrupted = True
            self._current.decoding = False
            if self._ledger is not None:
                self._ledger.note(self._current.pkt, "rx-busy", self.env.now)
            self._current = None
        self._tx_end_time = self.env.now + duration
        self.busy_epoch += 1
        self.frames_sent += 1
        self._obs_sent.inc()
        if self.energy is not None:
            self.energy.note_tx(duration)
        self.channel.transmit(self, pkt, duration)
        # Wake idle waiters when our own transmission completes.
        if FASTPATH:
            DeferredCall(self.env, duration, self._notify_if_idle)
        else:
            self.env.process(self._tx_done(duration))

    def _tx_done(self, duration: float):
        yield self.env.timeout(duration)
        self._notify_if_idle()

    # -- receive -----------------------------------------------------------------

    def begin_receive(
        self, pkt: Packet, power: float, duration: float, distance: float = 0.0
    ) -> None:
        """Called by the channel when a signal's first bit arrives."""
        if not self.up:
            if self._ledger is not None:
                self._ledger.note(pkt, "rx-down", self.env.now)
            return  # crashed: deaf until recovery
        if power < self.params.cs_threshold:
            if self._ledger is not None:
                self._ledger.note(pkt, "out-of-range", self.env.now)
            return  # below the noise floor: invisible
        signal = _Signal(
            pkt=pkt,
            power=power,
            end_time=self.env.now + duration,
            distance=distance,
        )
        self._signals.append(signal)
        self.busy_epoch += 1
        if self.params.sinr_mode:
            self._classify_sinr(signal)
        else:
            self._classify(signal)
        if FASTPATH:
            DeferredCall(
                self.env, duration, lambda: self._end_signal(signal, duration)
            )
        else:
            self.env.process(self._signal_lifetime(signal, duration))

    def _interference_for(self, signal: _Signal) -> float:
        """Noise floor plus the power of every *other* signal on the air."""
        return self.params.noise_floor + sum(
            s.power for s in self._signals if s is not signal
        )

    def _classify_sinr(self, signal: _Signal) -> None:
        """Cumulative-interference reception decision (SINR mode).

        The receiver locks onto the first decodable frame; every later
        arrival is interference.  A decode is corrupted the moment its
        SINR dips below the threshold — corruption is permanent even if
        the interferer ends early (the damaged bits stay damaged).
        """
        ledger = self._ledger
        if self.transmitting:
            signal.corrupted = True
            if ledger is not None:
                ledger.note(signal.pkt, "rx-busy", self.env.now)
            return
        if self._current is not None:
            current = self._current
            sinr = current.power / self._interference_for(current)
            if sinr < self.params.sinr_threshold:
                current.corrupted = True
                if ledger is not None:
                    ledger.note(current.pkt, "collision", self.env.now)
            signal.corrupted = True  # receiver stays locked on current
            if ledger is not None:
                ledger.note(signal.pkt, "collision", self.env.now)
            return
        decodable = (
            signal.power >= self._decode_threshold(signal)
            and signal.power / self._interference_for(signal)
            >= self.params.sinr_threshold
        )
        if decodable:
            signal.decoding = True
            self._current = signal
            if self.mac is not None:
                self.mac.phy_rx_start(signal.pkt)
        else:
            signal.corrupted = True
            if ledger is not None:
                ledger.note(signal.pkt, "undecodable", self.env.now)

    def _decode_threshold(self, signal: _Signal) -> float:
        """Sensitivity for this frame, honouring its transmit rate."""
        return self.params.rx_threshold_for(signal.pkt.meta.get("phy_rate"))

    def _classify(self, signal: _Signal) -> None:
        """Decide whether ``signal`` becomes the decoded frame."""
        decodable = signal.power >= self._decode_threshold(signal)
        ledger = self._ledger
        if self.transmitting:
            signal.corrupted = True
            if ledger is not None:
                ledger.note(signal.pkt, "rx-busy", self.env.now)
            return
        if self._current is None:
            if decodable:
                signal.decoding = True
                self._current = signal
                if self.mac is not None:
                    self.mac.phy_rx_start(signal.pkt)
            else:
                signal.corrupted = True
                if ledger is not None:
                    ledger.note(signal.pkt, "undecodable", self.env.now)
            return
        # A reception is already in progress: capture arithmetic.
        current = self._current
        if current.power >= signal.power * self.params.capture_ratio:
            # Existing frame captures; newcomer is harmless interference.
            signal.corrupted = True
            if ledger is not None:
                ledger.note(signal.pkt, "collision", self.env.now)
        elif decodable and signal.power >= current.power * self.params.capture_ratio:
            # Newcomer captures the receiver.
            current.corrupted = True
            current.decoding = False
            if ledger is not None:
                ledger.note(current.pkt, "collision", self.env.now)
            signal.decoding = True
            self._current = signal
            if self.mac is not None:
                self.mac.phy_rx_start(signal.pkt)
        else:
            # Comparable powers: both frames are destroyed.
            current.corrupted = True
            signal.corrupted = True
            if ledger is not None:
                ledger.note(current.pkt, "collision", self.env.now)
                ledger.note(signal.pkt, "collision", self.env.now)

    def _signal_lifetime(self, signal: _Signal, duration: float):
        yield self.env.timeout(duration)
        self._end_signal(signal, duration)

    def _end_signal(self, signal: _Signal, duration: float) -> None:
        """Retire ``signal`` when its last bit leaves the air."""
        self._signals.remove(signal)
        if not self.up:
            # The node crashed mid-reception: no MAC upcalls, no energy
            # accounting — the frame is simply gone.
            if self._ledger is not None:
                self._ledger.note(signal.pkt, "rx-down", self.env.now)
            self._notify_if_idle()
            return
        if self.energy is not None and signal.power >= self._decode_threshold(
            signal
        ):
            self.energy.note_rx(duration)
        if signal is self._current:
            self._current = None
            if signal.corrupted or self.transmitting:
                self.frames_corrupted += 1
                self._obs_corrupt.inc()
                if self._ledger is not None:
                    self._ledger.note(signal.pkt, "collision", self.env.now)
                if self.mac is not None:
                    self.mac.phy_rx_failed(signal.pkt, "collision")
            elif self.error_model is not None and self.error_model.corrupts(
                signal.pkt, signal.distance, signal.power
            ):
                self.frames_corrupted += 1
                self._obs_corrupt.inc()
                if self._ledger is not None:
                    self._ledger.note(signal.pkt, "error-model", self.env.now)
                if self.mac is not None:
                    self.mac.phy_rx_failed(signal.pkt, "error-model")
            else:
                self.frames_received += 1
                self._obs_recv.inc()
                if self.mac is not None:
                    self.mac.phy_rx_end(signal.pkt)
        elif signal.decoding:  # pragma: no cover - defensive
            pass
        else:
            if signal.corrupted and signal.power >= self._decode_threshold(
                signal
            ):
                self.frames_corrupted += 1
                self._obs_corrupt.inc()
                if self.mac is not None:
                    self.mac.phy_rx_failed(signal.pkt, "collision")
        self._notify_if_idle()
