"""Radio energy accounting (ns-2 ``EnergyModel`` equivalent).

Attach an :class:`EnergyModel` to a radio via ``phy.energy``; the radio
reports transmit and receive airtime, and idle power is integrated over
the remaining wall-clock.  Default power draws follow the classic
WaveLAN measurements (Feeney & Nilsson, INFOCOM 2001): ~1.4 W transmit,
~0.9 W receive, ~0.8 W idle.

Simplifications (documented): energy is charged for *decoded* receive
time only (carrier-sensed but undecodable signals count as idle), and
overlapping receive signals are charged once — both second-order effects
at these power levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


@dataclass
class EnergyParams:
    """Battery capacity and per-state power draw (watts)."""

    initial_energy: float = 1000.0
    tx_power: float = 1.4
    rx_power: float = 0.9
    idle_power: float = 0.8

    def __post_init__(self) -> None:
        if self.initial_energy <= 0:
            raise ValueError("initial_energy must be positive")
        for name in ("tx_power", "rx_power", "idle_power"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class EnergyModel:
    """Tracks one radio's energy budget."""

    def __init__(self, env: "Environment", params: EnergyParams | None = None) -> None:
        self.env = env
        self.params = params or EnergyParams()
        self.tx_seconds = 0.0
        self.rx_seconds = 0.0
        self._created_at = env.now

    # -- radio hooks ---------------------------------------------------------

    def note_tx(self, duration: float) -> None:
        """Charge ``duration`` seconds of transmit airtime."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.tx_seconds += duration

    def note_rx(self, duration: float) -> None:
        """Charge ``duration`` seconds of receive airtime."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.rx_seconds += duration

    # -- accounting ---------------------------------------------------------------

    @property
    def tx_energy(self) -> float:
        """Joules spent transmitting."""
        return self.tx_seconds * self.params.tx_power

    @property
    def rx_energy(self) -> float:
        """Joules spent receiving."""
        return self.rx_seconds * self.params.rx_power

    def idle_seconds(self, now: float | None = None) -> float:
        """Idle time so far (elapsed minus busy airtime, floored at 0)."""
        now = self.env.now if now is None else now
        elapsed = now - self._created_at
        return max(0.0, elapsed - self.tx_seconds - self.rx_seconds)

    def consumed(self, now: float | None = None) -> float:
        """Total joules consumed up to ``now``."""
        return (
            self.tx_energy
            + self.rx_energy
            + self.idle_seconds(now) * self.params.idle_power
        )

    def remaining(self, now: float | None = None) -> float:
        """Joules left in the battery (floored at 0)."""
        return max(0.0, self.params.initial_energy - self.consumed(now))

    def depleted(self, now: float | None = None) -> bool:
        """True once the battery has run out."""
        return self.remaining(now) <= 0.0

    def breakdown(self, now: float | None = None) -> dict[str, float]:
        """Joules by state — handy for reports and tests."""
        return {
            "tx": self.tx_energy,
            "rx": self.rx_energy,
            "idle": self.idle_seconds(now) * self.params.idle_power,
        }
