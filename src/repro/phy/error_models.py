"""Channel error models (ns-2 ``ErrorModel`` equivalents).

An error model decides, per frame, whether random channel impairment
(fading, external interference) corrupts it — on top of the collision
and capture logic the radio already applies.  Attach one to a
:class:`~repro.phy.radio.WirelessPhy` via ``phy.error_model``.

* :class:`UniformErrorModel` — i.i.d. frame loss with fixed probability,
  optionally scaled per byte (longer frames more likely to die).
* :class:`GilbertElliotErrorModel` — two-state bursty loss (good/bad
  channel), the standard model for fading-induced error bursts.
* :class:`DistanceDependentErrorModel` — loss probability rising with
  range, approximating the soft edge of real radio coverage that the
  two-ray threshold model makes artificially sharp.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.packet import Packet


class ErrorModel:
    """Base class: decide whether a frame is corrupted."""

    def corrupts(self, pkt: Packet, distance: float, power: float) -> bool:
        """True if the frame should be dropped as corrupted."""
        raise NotImplementedError

    #: Frames inspected / frames corrupted (populated by the radio).
    def reset_counters(self) -> None:
        """Reset inspection counters."""
        self.frames_checked = 0
        self.frames_corrupted = 0

    def __init__(self) -> None:
        self.reset_counters()

    def _check(self, corrupted: bool) -> bool:
        self.frames_checked += 1
        if corrupted:
            self.frames_corrupted += 1
        return corrupted

    @property
    def observed_rate(self) -> float:
        """Fraction of inspected frames corrupted so far."""
        if self.frames_checked == 0:
            return 0.0
        return self.frames_corrupted / self.frames_checked


class UniformErrorModel(ErrorModel):
    """Independent per-frame (or per-byte) loss."""

    def __init__(
        self,
        rate: float,
        unit: str = "packet",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        if unit not in ("packet", "byte"):
            raise ValueError("unit must be 'packet' or 'byte'")
        self.rate = rate
        self.unit = unit
        self._rng = rng or random.Random(0)

    def corrupts(self, pkt: Packet, distance: float, power: float) -> bool:
        if self.unit == "packet":
            p = self.rate
        else:
            # Per-byte rate r: P(frame lost) = 1 - (1 - r)^bytes.
            p = 1.0 - (1.0 - self.rate) ** pkt.size
        return self._check(self._rng.random() < p)


class GilbertElliotErrorModel(ErrorModel):
    """Two-state Markov (good/bad) bursty loss.

    In the *good* state frames are lost with ``good_loss`` (usually ~0);
    in the *bad* state with ``bad_loss`` (usually near 1).  State
    transitions occur per inspected frame with the given probabilities,
    giving geometric burst lengths of mean ``1/p_bad_to_good``.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.2,
        good_loss: float = 0.0,
        bad_loss: float = 0.9,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.in_bad_state = False
        self._rng = rng or random.Random(0)

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.good_loss if not self.in_bad_state else self.bad_loss
        pi_bad = self.p_good_to_bad / denom
        return (1 - pi_bad) * self.good_loss + pi_bad * self.bad_loss

    def corrupts(self, pkt: Packet, distance: float, power: float) -> bool:
        # Evolve the channel state, then sample loss in the new state.
        if self.in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        loss = self.bad_loss if self.in_bad_state else self.good_loss
        return self._check(self._rng.random() < loss)


class DistanceDependentErrorModel(ErrorModel):
    """Loss probability rising smoothly with distance.

    ``P(loss) = min(max_loss, (d / reference)^exponent · base_loss)`` —
    a soft coverage edge in place of the hard threshold cliff.
    """

    def __init__(
        self,
        reference_distance: float = 250.0,
        base_loss: float = 0.05,
        exponent: float = 4.0,
        max_loss: float = 0.95,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        if reference_distance <= 0:
            raise ValueError("reference_distance must be positive")
        if not 0 <= base_loss <= 1 or not 0 <= max_loss <= 1:
            raise ValueError("loss probabilities must be in [0, 1]")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.reference_distance = reference_distance
        self.base_loss = base_loss
        self.exponent = exponent
        self.max_loss = max_loss
        self._rng = rng or random.Random(0)

    def loss_probability(self, distance: float) -> float:
        """Loss probability at ``distance`` metres."""
        scaled = (distance / self.reference_distance) ** self.exponent
        return min(self.max_loss, scaled * self.base_loss)

    def corrupts(self, pkt: Packet, distance: float, power: float) -> bool:
        return self._check(self._rng.random() < self.loss_probability(distance))
