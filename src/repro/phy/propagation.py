"""Radio propagation models (ns-2 equivalents).

All models answer one question: given transmit power and a
transmitter/receiver geometry, what power arrives at the receiver?
Powers are in watts, distances in metres, matching ns-2's conventions so
ns-2's default thresholds can be reused directly.
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: Speed of light (m/s), used for wavelength and propagation delay.
SPEED_OF_LIGHT = 299_792_458.0


class PropagationModel:
    """Base class for propagation models."""

    #: True when ``rx_power`` is a pure function of its arguments.  The
    #: channel's fast-path link cache only memoises deterministic models —
    #: caching a stochastic model would skip its per-call RNG draws and
    #: change the random stream.  Stochastic subclasses must override this.
    deterministic = True

    def rx_power(
        self,
        tx_power: float,
        distance: float,
        wavelength: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        tx_height: float = 1.5,
        rx_height: float = 1.5,
        system_loss: float = 1.0,
    ) -> float:
        """Received power in watts at ``distance`` metres."""
        raise NotImplementedError

    def range_for_threshold(
        self, tx_power: float, threshold: float, wavelength: float, **kwargs: float
    ) -> float:
        """Distance at which received power falls to ``threshold`` watts.

        Solved numerically by bisection so subclasses get it for free.
        """
        if self.rx_power(tx_power, 1e-3, wavelength, **kwargs) < threshold:
            return 0.0
        lo, hi = 1e-3, 1.0
        while self.rx_power(tx_power, hi, wavelength, **kwargs) >= threshold:
            hi *= 2
            if hi > 1e7:  # pragma: no cover - absurd range guard
                return hi
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.rx_power(tx_power, mid, wavelength, **kwargs) >= threshold:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def friis(
    tx_power: float,
    distance: float,
    wavelength: float,
    tx_gain: float,
    rx_gain: float,
    system_loss: float,
) -> float:
    """Friis free-space equation: Pr = Pt·Gt·Gr·λ² / ((4πd)²·L)."""
    if distance <= 0:
        return tx_power
    denom = (4.0 * math.pi * distance) ** 2 * system_loss
    return tx_power * tx_gain * rx_gain * wavelength**2 / denom


class FreeSpace(PropagationModel):
    """Ideal free-space (Friis) propagation."""

    def rx_power(
        self,
        tx_power: float,
        distance: float,
        wavelength: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        tx_height: float = 1.5,
        rx_height: float = 1.5,
        system_loss: float = 1.0,
    ) -> float:
        return friis(tx_power, distance, wavelength, tx_gain, rx_gain, system_loss)


class TwoRayGround(PropagationModel):
    """Two-ray ground-reflection model (ns-2's wireless default).

    Friis up to the crossover distance ``dc = 4π·ht·hr / λ``; beyond it the
    ground reflection dominates and power falls with d⁴:
    ``Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L)``.
    """

    def __init__(self) -> None:
        # Geometry is fixed per radio profile, so the crossover for a given
        # (wavelength, heights) triple is computed once; rx_power runs per
        # receiver per transmission.
        self._crossover_memo: dict[tuple[float, float, float], float] = {}

    def crossover_distance(
        self, wavelength: float, tx_height: float = 1.5, rx_height: float = 1.5
    ) -> float:
        """Distance where the two-ray term takes over from Friis."""
        key = (wavelength, tx_height, rx_height)
        crossover = self._crossover_memo.get(key)
        if crossover is None:
            crossover = 4.0 * math.pi * tx_height * rx_height / wavelength
            self._crossover_memo[key] = crossover
        return crossover

    def rx_power(
        self,
        tx_power: float,
        distance: float,
        wavelength: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        tx_height: float = 1.5,
        rx_height: float = 1.5,
        system_loss: float = 1.0,
    ) -> float:
        if distance <= 0:
            return tx_power
        crossover = self.crossover_distance(wavelength, tx_height, rx_height)
        if distance <= crossover:
            return friis(
                tx_power, distance, wavelength, tx_gain, rx_gain, system_loss
            )
        return (
            tx_power
            * tx_gain
            * rx_gain
            * (tx_height * rx_height) ** 2
            / (distance**4 * system_loss)
        )


class LogNormalShadowing(PropagationModel):
    """Log-normal shadowing: path-loss exponent plus Gaussian dB noise.

    ``Pr(d) [dB] = Pr(d0) [dB] - 10·β·log10(d/d0) + X``, X ~ N(0, σ_dB).
    Deterministic when ``sigma_db == 0``.
    """

    def __init__(
        self,
        path_loss_exponent: float = 2.0,
        sigma_db: float = 4.0,
        reference_distance: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        self.path_loss_exponent = path_loss_exponent
        self.sigma_db = sigma_db
        self.reference_distance = reference_distance
        self._rng = rng or random.Random(0)
        # With shadowing noise every call draws from the RNG; caching
        # would freeze the fade and starve the stream.
        self.deterministic = sigma_db == 0

    def rx_power(
        self,
        tx_power: float,
        distance: float,
        wavelength: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        tx_height: float = 1.5,
        rx_height: float = 1.5,
        system_loss: float = 1.0,
    ) -> float:
        if distance <= 0:
            return tx_power
        reference_power = friis(
            tx_power,
            self.reference_distance,
            wavelength,
            tx_gain,
            rx_gain,
            system_loss,
        )
        distance = max(distance, self.reference_distance)
        path_loss_db = (
            10.0
            * self.path_loss_exponent
            * math.log10(distance / self.reference_distance)
        )
        shadowing_db = (
            self._rng.gauss(0.0, self.sigma_db) if self.sigma_db > 0 else 0.0
        )
        return reference_power * 10.0 ** ((-path_loss_db + shadowing_db) / 10.0)
