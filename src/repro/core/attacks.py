"""Denial-of-service attack modelling (paper §III.E's security trade-off).

The paper closes its analysis noting that 802.11's performance comes
with a DoS exposure, and that "a combination of TDMA and Frequency
Hopping Spread Spectrum (FHSS) may be used as a means to help prevent
Denial-of-Service attacks on IVC networks" (citing the authors' own SAE
work).  This module provides the pieces to quantify that trade-off:

* :class:`JammerApp` — a radio that ignores carrier sense and emits
  noise frames continuously or in duty-cycled bursts.
* :func:`fhss_effective_loss` — the fraction of slots a single-channel
  jammer can hit when the victims hop over ``n_channels`` (modelled in
  simulation as an equivalent random frame-loss rate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addresses import BROADCAST
from repro.net.headers import IpHeader, MacHeader
from repro.net.packet import Packet, PacketType
from repro.phy.radio import RadioParams, WirelessPhy

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment
    from repro.net.channel import WirelessChannel


class _DeafMac:
    """MAC stub for the jammer: it never listens."""

    def phy_rx_start(self, pkt: Packet) -> None:
        pass

    def phy_rx_end(self, pkt: Packet) -> None:
        pass

    def phy_rx_failed(self, pkt: Packet, reason: str) -> None:
        pass


def _noise_frame(size: int) -> Packet:
    """A meaningless frame addressed to nobody."""
    return Packet(
        ptype=PacketType.MAC,
        size=size,
        ip=IpHeader(src=BROADCAST, dst=BROADCAST),
        mac=MacHeader(src=BROADCAST, dst=BROADCAST, subtype="noise"),
    )


class JammerApp:
    """A carrier-sense-ignoring noise source.

    Parameters
    ----------
    env / channel:
        Simulation environment and the channel to pollute.
    position:
        Fixed jammer location, metres.
    noise_size:
        Bytes per noise frame (sets burst airtime).
    duty_cycle:
        Fraction of time on the air, in (0, 1].  1.0 = continuous
        jamming; smaller values alternate burst/silence periods.
    period:
        Length of one on/off cycle, seconds (ignored at duty 1.0).
    """

    def __init__(
        self,
        env: "Environment",
        channel: "WirelessChannel",
        position: tuple[float, float],
        noise_size: int = 1500,
        duty_cycle: float = 1.0,
        period: float = 0.05,
        radio_params: Optional[RadioParams] = None,
    ) -> None:
        if not 0 < duty_cycle <= 1:
            raise ValueError("duty_cycle must be in (0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        if noise_size <= 0:
            raise ValueError("noise_size must be positive")
        self.env = env
        self.duty_cycle = duty_cycle
        self.period = period
        self.noise_size = noise_size
        self.phy = WirelessPhy(
            env, position_fn=lambda: position, params=radio_params
        )
        self.phy.mac = _DeafMac()
        channel.attach(self.phy)
        self.frames_emitted = 0
        self._running = False

    @property
    def frame_airtime(self) -> float:
        """Airtime of one noise frame."""
        from repro.mac.base import PLCP_OVERHEAD

        return (
            PLCP_OVERHEAD
            + (self.noise_size + MacHeader.WIRE_SIZE) * 8.0
            / self.phy.params.bitrate
        )

    def start(self, at: float = 0.0) -> None:
        """Begin jamming at time ``at``."""
        self.env.process(self._run(at))

    def stop(self) -> None:
        """Cease fire."""
        self._running = False

    def _run(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        self._running = True
        airtime = self.frame_airtime
        while self._running:
            on_time = (
                self.period * self.duty_cycle
                if self.duty_cycle < 1.0
                else airtime
            )
            burst_end = self.env.now + on_time
            while self._running and self.env.now < burst_end:
                self.phy.transmit(_noise_frame(self.noise_size), airtime)
                self.frames_emitted += 1
                yield self.env.timeout(airtime)
            if self.duty_cycle < 1.0:
                yield self.env.timeout(self.period * (1.0 - self.duty_cycle))


def fhss_effective_loss(
    n_channels: int, jammer_channels: int = 1
) -> float:
    """Fraction of transmissions a fixed jammer hits under FHSS.

    Victims hop uniformly across ``n_channels``; a jammer parked on
    ``jammer_channels`` of them corrupts exactly the hops that land
    there.  In simulation the mitigation is therefore equivalent to a
    clean channel with a random frame-loss rate of this value — compose
    it with :class:`repro.phy.error_models.UniformErrorModel` or the
    trial config's ``error_rate``.
    """
    if n_channels < 1:
        raise ValueError("n_channels must be at least 1")
    if not 0 <= jammer_channels <= n_channels:
        raise ValueError("jammer_channels must be in [0, n_channels]")
    return jammer_channels / n_channels
