"""The Extended Brake Lights application.

Two flavours:

* :class:`EblApplication` — the paper's configuration: when the lead
  vehicle brakes, it opens one TCP stream per trailing vehicle and keeps
  them saturated until the brakes release.  The *initial* packet of each
  episode is what the safety analysis measures.
* :class:`EblWarningApp` — an extension: connectionless single-hop UDP
  broadcast warnings carrying an :class:`~repro.net.headers.EblHeader`,
  the style later DSRC standards adopted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.vehicle import Vehicle
from repro.net.addresses import BROADCAST
from repro.net.headers import EblHeader
from repro.net.packet import Packet, PacketType
from repro.transport.apps import BackoffPolicy, CbrApp, RetryingSender
from repro.transport.tcp import TCP_VARIANTS, TcpAgent, TcpParams, TcpSink
from repro.transport.udp import UdpAgent

#: Port the lead's per-follower TCP senders start at.
EBL_SENDER_PORT_BASE = 100
#: Port every follower's TCP sink listens on.
EBL_SINK_PORT = 200
#: Port for broadcast UDP warnings (extension app).
EBL_WARNING_PORT = 300


@dataclass
class EblFlow:
    """One lead→follower stream."""

    sender: TcpAgent
    sink: TcpSink
    follower: Vehicle

    @property
    def delivered_segments(self) -> int:
        """Segments the follower has received in order."""
        return self.sink.delivered_segments


class EblApplication:
    """Brake-gated TCP streams from a platoon lead to its followers."""

    def __init__(
        self,
        lead: Vehicle,
        followers: list[Vehicle],
        packet_size: int = 1000,
        tcp_window: int = 20,
        cbr_interval: Optional[float] = None,
        tcp_variant: str = "reno",
    ) -> None:
        """Create the flows (they stay paused until the lead brakes).

        Parameters
        ----------
        lead / followers:
            The platoon's vehicles.
        packet_size:
            TCP segment payload, bytes (the trial's variable parameter).
        tcp_window:
            Sender window in segments (ns-2 ``window_``).
        cbr_interval:
            When given, data is offered at one packet per interval (CBR
            over TCP); when None the stream is a saturated FTP transfer.
        tcp_variant:
            Sender congestion-control flavour: "reno", "tahoe", or
            "newreno".
        """
        if not followers:
            raise ValueError("EBL needs at least one trailing vehicle")
        if tcp_variant not in TCP_VARIANTS:
            raise ValueError(
                f"unknown tcp_variant {tcp_variant!r}; "
                f"expected one of {sorted(TCP_VARIANTS)}"
            )
        sender_cls = TCP_VARIANTS[tcp_variant]
        self.lead = lead
        self.followers = followers
        self.packet_size = packet_size
        self.cbr_interval = cbr_interval
        self.flows: list[EblFlow] = []
        self._cbr_apps: list[CbrApp] = []
        self.episodes = 0
        env = lead.env
        for index, follower in enumerate(followers):
            params = TcpParams(segment_size=packet_size, window=tcp_window)
            sender = sender_cls(
                lead.node, EBL_SENDER_PORT_BASE + index, params=params
            )
            sink = TcpSink(follower.node, EBL_SINK_PORT)
            sender.connect(follower.address, EBL_SINK_PORT)
            sink.connect(lead.address, sender.local_port)
            sender.pause()  # silent until the brakes come on
            self.flows.append(EblFlow(sender=sender, sink=sink, follower=follower))
        lead.on_brake_change(self._brake_changed)
        self.env = env

    def _brake_changed(self, braking: bool) -> None:
        if braking:
            self.episodes += 1
            for flow in self.flows:
                flow.sender.resume()
                if self.cbr_interval is None:
                    flow.sender.send_forever()
                else:
                    cbr = CbrApp(
                        flow.sender,
                        packet_size=self.packet_size,
                        interval=self.cbr_interval,
                    )
                    cbr.start(at=self.env.now)
                    self._cbr_apps.append(cbr)
        else:
            for cbr in self._cbr_apps:
                cbr.stop()
            self._cbr_apps.clear()
            for flow in self.flows:
                flow.sender.pause()

    @property
    def sinks(self) -> list[TcpSink]:
        """All follower sinks (for platoon-level throughput recording)."""
        return [flow.sink for flow in self.flows]


class EblWarningApp:
    """Broadcast UDP brake warnings (extension; DSRC-style beaconing).

    On every brake application the vehicle broadcasts an initial warning
    immediately, then repeats at ``repeat_interval`` until release.

    When ``retry_policy`` is given the *initial* warning — the packet the
    paper's safety analysis hinges on — degrades gracefully under faults:
    peers that hear it reply with a unicast acknowledgement, and the
    sender retransmits it with bounded exponential backoff until
    ``expected_acks`` distinct peers have confirmed, the brakes release,
    or the policy's attempts run out.  Acking is symmetric: only apps
    constructed with a policy send acks, so a fleet opts into the
    reliability extension together and the paper's baseline traffic is
    untouched when the policy is None.
    """

    def __init__(
        self,
        vehicle: Vehicle,
        packet_size: int = 200,
        repeat_interval: float = 0.1,
        deceleration: float = 4.0,
        retry_policy: Optional[BackoffPolicy] = None,
        expected_acks: int = 1,
    ) -> None:
        if repeat_interval <= 0:
            raise ValueError("repeat_interval must be positive")
        if expected_acks < 1:
            raise ValueError("expected_acks must be >= 1")
        self.vehicle = vehicle
        self.env = vehicle.env
        self.packet_size = packet_size
        self.repeat_interval = repeat_interval
        self.deceleration = deceleration
        self.retry_policy = retry_policy
        self.expected_acks = expected_acks
        self.agent = UdpAgent(vehicle.node, EBL_WARNING_PORT)
        self.agent.connect(BROADCAST, EBL_WARNING_PORT)
        self.agent.recv_callback = self._recv
        self.warnings_sent = 0
        self.acks_sent = 0
        #: One retry controller per braking episode, in episode order.
        self.retries: list[RetryingSender] = []
        self._episode = 0
        self._ackers: set[int] = set()
        vehicle.on_brake_change(self._brake_changed)

    # -- reliability accounting -------------------------------------------

    @property
    def initial_retransmits(self) -> int:
        """Extra copies of initial warnings sent beyond the first."""
        return sum(max(0, retry.attempts - 1) for retry in self.retries)

    @property
    def initial_acknowledged(self) -> int:
        """Episodes whose initial warning was confirmed by enough peers."""
        return sum(1 for retry in self.retries if retry.acknowledged)

    @property
    def initial_exhausted(self) -> int:
        """Episodes where the retry budget ran out unconfirmed."""
        return sum(1 for retry in self.retries if retry.exhausted)

    # -- beaconing ---------------------------------------------------------

    def _brake_changed(self, braking: bool) -> None:
        if braking:
            self._episode += 1
            start_seq = 0
            if self.retry_policy is not None:
                self._start_initial_retry()
                start_seq = 1  # seq 0 belongs to the retry controller
            self.env.process(self._beacon(self._episode, start_seq))
        elif self.retries and not self.retries[-1].done:
            self.retries[-1].cancel()  # a moot warning is not worth airtime

    def _beacon(self, episode: int, seq: int):
        if seq > 0:
            yield self.env.timeout(self.repeat_interval)
        while self.vehicle.braking and self._episode == episode:
            self._send_warning(seq)
            seq += 1
            yield self.env.timeout(self.repeat_interval)

    def _send_warning(self, seq: int) -> None:
        header = EblHeader(
            vehicle=self.vehicle.address,
            warning_seq=seq,
            initial=(seq == 0),
            deceleration=self.deceleration,
        )
        self.agent.send(
            self.packet_size, headers={"ebl": header}, ptype=PacketType.EBL
        )
        self.warnings_sent += 1

    # -- initial-warning retransmission ------------------------------------

    def _start_initial_retry(self) -> None:
        self._ackers = set()
        retry = RetryingSender(
            self.env,
            lambda attempt: self._send_warning(0),
            self.retry_policy,
        )
        self.retries.append(retry)
        retry.start()

    def _recv(self, pkt: Packet) -> None:
        header = pkt.headers.get("ebl")
        if header is None or self.retry_policy is None:
            return
        if header.ack:
            if not self.retries or self.retries[-1].done:
                return
            self._ackers.add(header.vehicle)
            if len(self._ackers) >= self.expected_acks:
                self.retries[-1].acknowledge()
        elif header.initial and header.vehicle != self.vehicle.address:
            self.acks_sent += 1
            self.agent.send(
                EblHeader.WIRE_SIZE,
                headers={
                    "ebl": EblHeader(
                        vehicle=self.vehicle.address,
                        warning_seq=header.warning_seq,
                        ack=True,
                    )
                },
                ptype=PacketType.EBL,
                dst=pkt.ip.src,
                dport=pkt.ip.sport,
            )
