"""The Extended Brake Lights application.

Two flavours:

* :class:`EblApplication` — the paper's configuration: when the lead
  vehicle brakes, it opens one TCP stream per trailing vehicle and keeps
  them saturated until the brakes release.  The *initial* packet of each
  episode is what the safety analysis measures.
* :class:`EblWarningApp` — an extension: connectionless single-hop UDP
  broadcast warnings carrying an :class:`~repro.net.headers.EblHeader`,
  the style later DSRC standards adopted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.vehicle import Vehicle
from repro.net.addresses import BROADCAST
from repro.net.headers import EblHeader
from repro.net.packet import PacketType
from repro.transport.apps import CbrApp
from repro.transport.tcp import TCP_VARIANTS, TcpAgent, TcpParams, TcpSink
from repro.transport.udp import UdpAgent

#: Port the lead's per-follower TCP senders start at.
EBL_SENDER_PORT_BASE = 100
#: Port every follower's TCP sink listens on.
EBL_SINK_PORT = 200
#: Port for broadcast UDP warnings (extension app).
EBL_WARNING_PORT = 300


@dataclass
class EblFlow:
    """One lead→follower stream."""

    sender: TcpAgent
    sink: TcpSink
    follower: Vehicle

    @property
    def delivered_segments(self) -> int:
        """Segments the follower has received in order."""
        return self.sink.delivered_segments


class EblApplication:
    """Brake-gated TCP streams from a platoon lead to its followers."""

    def __init__(
        self,
        lead: Vehicle,
        followers: list[Vehicle],
        packet_size: int = 1000,
        tcp_window: int = 20,
        cbr_interval: Optional[float] = None,
        tcp_variant: str = "reno",
    ) -> None:
        """Create the flows (they stay paused until the lead brakes).

        Parameters
        ----------
        lead / followers:
            The platoon's vehicles.
        packet_size:
            TCP segment payload, bytes (the trial's variable parameter).
        tcp_window:
            Sender window in segments (ns-2 ``window_``).
        cbr_interval:
            When given, data is offered at one packet per interval (CBR
            over TCP); when None the stream is a saturated FTP transfer.
        tcp_variant:
            Sender congestion-control flavour: "reno", "tahoe", or
            "newreno".
        """
        if not followers:
            raise ValueError("EBL needs at least one trailing vehicle")
        if tcp_variant not in TCP_VARIANTS:
            raise ValueError(
                f"unknown tcp_variant {tcp_variant!r}; "
                f"expected one of {sorted(TCP_VARIANTS)}"
            )
        sender_cls = TCP_VARIANTS[tcp_variant]
        self.lead = lead
        self.followers = followers
        self.packet_size = packet_size
        self.cbr_interval = cbr_interval
        self.flows: list[EblFlow] = []
        self._cbr_apps: list[CbrApp] = []
        self.episodes = 0
        env = lead.env
        for index, follower in enumerate(followers):
            params = TcpParams(segment_size=packet_size, window=tcp_window)
            sender = sender_cls(
                lead.node, EBL_SENDER_PORT_BASE + index, params=params
            )
            sink = TcpSink(follower.node, EBL_SINK_PORT)
            sender.connect(follower.address, EBL_SINK_PORT)
            sink.connect(lead.address, sender.local_port)
            sender.pause()  # silent until the brakes come on
            self.flows.append(EblFlow(sender=sender, sink=sink, follower=follower))
        lead.on_brake_change(self._brake_changed)
        self.env = env

    def _brake_changed(self, braking: bool) -> None:
        if braking:
            self.episodes += 1
            for flow in self.flows:
                flow.sender.resume()
                if self.cbr_interval is None:
                    flow.sender.send_forever()
                else:
                    cbr = CbrApp(
                        flow.sender,
                        packet_size=self.packet_size,
                        interval=self.cbr_interval,
                    )
                    cbr.start(at=self.env.now)
                    self._cbr_apps.append(cbr)
        else:
            for cbr in self._cbr_apps:
                cbr.stop()
            self._cbr_apps.clear()
            for flow in self.flows:
                flow.sender.pause()

    @property
    def sinks(self) -> list[TcpSink]:
        """All follower sinks (for platoon-level throughput recording)."""
        return [flow.sink for flow in self.flows]


class EblWarningApp:
    """Broadcast UDP brake warnings (extension; DSRC-style beaconing).

    On every brake application the vehicle broadcasts an initial warning
    immediately, then repeats at ``repeat_interval`` until release.
    """

    def __init__(
        self,
        vehicle: Vehicle,
        packet_size: int = 200,
        repeat_interval: float = 0.1,
        deceleration: float = 4.0,
    ) -> None:
        if repeat_interval <= 0:
            raise ValueError("repeat_interval must be positive")
        self.vehicle = vehicle
        self.env = vehicle.env
        self.packet_size = packet_size
        self.repeat_interval = repeat_interval
        self.deceleration = deceleration
        self.agent = UdpAgent(vehicle.node, EBL_WARNING_PORT)
        self.agent.connect(BROADCAST, EBL_WARNING_PORT)
        self.warnings_sent = 0
        self._episode = 0
        vehicle.on_brake_change(self._brake_changed)

    def _brake_changed(self, braking: bool) -> None:
        if braking:
            self._episode += 1
            self.env.process(self._beacon(self._episode))

    def _beacon(self, episode: int):
        seq = 0
        while self.vehicle.braking and self._episode == episode:
            header = EblHeader(
                vehicle=self.vehicle.address,
                warning_seq=seq,
                initial=(seq == 0),
                deceleration=self.deceleration,
            )
            self.agent.send(
                self.packet_size, headers={"ebl": header}, ptype=PacketType.EBL
            )
            self.warnings_sent += 1
            seq += 1
            yield self.env.timeout(self.repeat_interval)
