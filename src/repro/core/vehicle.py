"""A vehicle: a network node plus motion and braking state."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mobility.waypoint import WaypointMobility
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class Vehicle:
    """One simulated automobile.

    The vehicle couples its :class:`~repro.net.node.Node` (the radio
    stack) with a braking schedule.  Per the paper's EBL semantics,
    "communication between the vehicles occurs only when the vehicles are
    braking or stopped" — the EBL application subscribes to the braking
    callbacks to gate its transmissions.
    """

    def __init__(
        self, env: "Environment", node: Node, mobility: WaypointMobility
    ) -> None:
        self.env = env
        self.node = node
        self.mobility = mobility
        self.braking = False
        self._brake_listeners: list[Callable[[bool], None]] = []
        #: (start, end) pairs of scheduled braking episodes (end None = open).
        self.brake_schedule: list[tuple[float, Optional[float]]] = []

    @property
    def address(self) -> int:
        """The vehicle's network address."""
        return self.node.address

    @property
    def position(self) -> tuple[float, float]:
        """Current position, metres."""
        return self.mobility.position(self.env.now)

    @property
    def speed(self) -> float:
        """Current scalar speed, m/s."""
        return self.mobility.speed(self.env.now)

    def on_brake_change(self, listener: Callable[[bool], None]) -> None:
        """Subscribe to braking-state transitions (True = brakes applied)."""
        self._brake_listeners.append(listener)

    def schedule_braking(self, start: float, end: Optional[float] = None) -> None:
        """Schedule a braking episode from ``start`` to ``end`` (None=open)."""
        if end is not None and end <= start:
            raise ValueError("braking episode must end after it starts")
        self.brake_schedule.append((start, end))
        self.env.process(self._braking_episode(start, end))

    def _braking_episode(self, start: float, end: Optional[float]):
        if start > self.env.now:
            yield self.env.timeout(start - self.env.now)
        self._set_braking(True)
        if end is not None:
            yield self.env.timeout(end - self.env.now)
            self._set_braking(False)

    def _set_braking(self, braking: bool) -> None:
        if braking == self.braking:
            return
        self.braking = braking
        for listener in self._brake_listeners:
            listener(braking)

    def is_braking_at(self, t: float) -> bool:
        """Whether the schedule has the brakes applied at time ``t``."""
        for start, end in self.brake_schedule:
            if start <= t and (end is None or t < end):
                return True
        return False
