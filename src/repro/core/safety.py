"""Stopping-distance safety assessment (paper §III.E).

"The one-way delay of the initial packet will be used for this
assessment, since this will be the first indication to trailing vehicles
that a lead vehicle is applying its brakes."  At 22.4 m/s (50 mph) and a
25 m separation, the paper finds a trailing vehicle consumes >20% of the
gap before the TDMA warning arrives, versus <2% with 802.11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.kinematics import (
    braking_distance,
    friction_deceleration,
    mph_to_mps,
)


@dataclass(frozen=True)
class SafetyAssessment:
    """Outcome of the §III.E analysis for one warning delay."""

    #: One-way delay of the initial warning packet, seconds.
    initial_delay: float
    #: Trailing vehicle's speed, m/s.
    speed: float
    #: Initial separation to the vehicle ahead, metres.
    separation: float
    #: Driver reaction time after the warning, seconds.
    reaction_time: float
    #: Deceleration both vehicles can achieve, m/s².
    deceleration: float

    @property
    def distance_during_delay(self) -> float:
        """Metres covered before the warning arrives (the paper's 5.38 m /
        0.45 m figures)."""
        return self.speed * self.initial_delay

    @property
    def gap_fraction_consumed(self) -> float:
        """Fraction of the separating distance consumed by the delay."""
        return self.distance_during_delay / self.separation

    @property
    def distance_before_braking(self) -> float:
        """Metres covered before the brakes actually engage
        (delay + driver/actuator reaction)."""
        return self.speed * (self.initial_delay + self.reaction_time)

    @property
    def stopping_margin(self) -> float:
        """Closing-distance margin, metres (positive = no collision).

        Both vehicles brake at the same deceleration, so their braking
        distances cancel; the follower loses ground only while the warning
        propagates and the driver reacts.  Margin = separation − v·(delay
        + reaction).
        """
        return self.separation - self.distance_before_braking

    @property
    def is_safe(self) -> bool:
        """True if the follower stops short of the lead."""
        return self.stopping_margin > 0

    @property
    def max_safe_delay(self) -> float:
        """Largest initial delay that still leaves a positive margin."""
        return self.separation / self.speed - self.reaction_time

    def worst_case_margin(self, road: str = "wet") -> float:
        """Margin when the *lead* stops instantly (hits an obstacle) and
        the follower brakes on the given road surface.

        Margin = separation − v·(delay+reaction) − v²/(2a_road).
        """
        decel = friction_deceleration(road)
        return (
            self.separation
            - self.distance_before_braking
            - braking_distance(self.speed, decel)
        )


def assess_safety(
    initial_delay: float,
    speed: float = mph_to_mps(50.0),
    separation: float = 25.0,
    reaction_time: float = 0.0,
    deceleration: float = 4.0,
) -> SafetyAssessment:
    """Run the paper's safety analysis for one measured initial delay.

    Defaults replicate §III.E: 50 mph, 25 m separation, and no explicit
    reaction time (the paper folds driver factors into its discussion
    rather than the arithmetic).
    """
    if initial_delay < 0:
        raise ValueError("initial_delay must be non-negative")
    if speed <= 0:
        raise ValueError("speed must be positive")
    if separation <= 0:
        raise ValueError("separation must be positive")
    if reaction_time < 0:
        raise ValueError("reaction_time must be non-negative")
    return SafetyAssessment(
        initial_delay=initial_delay,
        speed=speed,
        separation=separation,
        reaction_time=reaction_time,
        deceleration=deceleration,
    )
