"""Deterministic seed derivation for per-instance RNG streams.

The simulator never draws from the module-level :mod:`random` generator
(enforced by simlint rule SIM001).  Every stochastic component receives its
own :class:`random.Random`, and this module is the single place those
generators are minted from.

Convention
----------
A trial has one *root seed* (``TrialConfig.seed``).  Each component derives
an independent stream from ``(root, stream_name, index)``:

* ``stream_name`` names the consumer class of randomness (``"mac"``,
  ``"phy.error"``, ``"net.redqueue"``, ...), so adding a new stochastic
  component never perturbs the draws of existing ones;
* ``index`` separates instances within a stream (normally the node
  address or construction index), so two instances in one scenario never
  share an identical sequence by accident.

Derivation hashes the triple with SHA-256, which keeps streams independent
even for adjacent roots/indices (unlike ``seed * K + index`` arithmetic,
where overlapping affine combinations can collide) and is identical across
platforms and Python versions.

Frozen legacy streams
---------------------
Two streams predate this module and keep their original affine derivation
(:func:`mac_rng`, :func:`error_rng`): re-keying them would change every
archived trial result bit-for-bit.  The rule is therefore *new components
use* :func:`derive_rng`; *existing streams are never re-keyed*.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng", "mac_rng", "error_rng"]


def derive_seed(root: int, stream: str, index: int = 0) -> int:
    """A stable 64-bit seed for ``(root, stream, index)``.

    >>> derive_seed(1, "mac", 0) == derive_seed(1, "mac", 0)
    True
    >>> derive_seed(1, "mac", 0) != derive_seed(1, "mac", 1)
    True
    """
    token = f"{int(root)}/{stream}/{int(index)}".encode("ascii")
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


def derive_rng(root: int, stream: str, index: int = 0) -> random.Random:
    """A fresh :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(root, stream, index))


def mac_rng(root: int, address: int) -> random.Random:
    """Per-node MAC backoff stream (frozen legacy derivation)."""
    return random.Random(root * 1000 + address)


def error_rng(root: int, address: int) -> random.Random:
    """Per-node channel-error stream (frozen legacy derivation)."""
    return random.Random(root * 7919 + address)
