"""Cross-trial analysis (paper §III.E).

Reproduces the two comparisons the paper draws — packet size (trials 1 v
2) and MAC type (trials 1 v 3) — and packages per-trial summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.runner import TrialResult
from repro.core.safety import SafetyAssessment, assess_safety
from repro.stats.confidence import ConfidenceResult
from repro.stats.resilience import (
    ResilienceReport,
    WarningOutcome,
    recovery_latencies,
)
from repro.stats.summary import SeriesSummary


@dataclass
class TrialAnalysis:
    """The metrics the paper reports for one trial's first platoon."""

    name: str
    #: avg/min/max one-way delay per follower (1 = middle, 2 = trailing).
    delay_by_follower: dict[int, SeriesSummary]
    #: Steady-state delay level after the transient.
    steady_state_delay: float
    #: Packets in the transient state (the "until approximately packet N").
    transient_packets: int
    #: avg/min/max platoon throughput, Mbps.
    throughput: SeriesSummary
    #: 95% CI over the active-phase throughput samples.
    confidence: ConfidenceResult
    #: When the platoon's traffic first appears in the throughput series.
    traffic_start: float
    #: Delay of the initial brake-warning packet (fastest follower).
    initial_packet_delay: float
    #: §III.E stopping-distance assessment of that delay.
    safety: SafetyAssessment


def analyze_trial(result: TrialResult, platoon_id: int = 1) -> TrialAnalysis:
    """Compute the paper's §III.B-D metrics for one trial."""
    platoon = result.platoon(platoon_id)
    delay_by_follower = {
        flow.follower_index: flow.delay_summary()
        for flow in platoon.flows
        if len(flow.delays)
    }
    combined = platoon.combined_delays()
    initial = min(
        (flow.delays.initial_delay for flow in platoon.flows if len(flow.delays)),
        default=float("nan"),
    )
    steady = combined.steady_state_level() if len(combined) else float("nan")
    return TrialAnalysis(
        name=result.config.name,
        delay_by_follower=delay_by_follower,
        steady_state_delay=steady,
        transient_packets=combined.transient_length(),
        throughput=platoon.throughput.summary(),
        confidence=platoon.throughput_confidence(),
        traffic_start=platoon.throughput.start_of_traffic(),
        initial_packet_delay=initial,
        safety=assess_safety(
            initial,
            speed=result.config.speed_mps,
            separation=result.config.spacing,
        ),
    )


def assess_resilience(
    result: TrialResult,
    deadline: Optional[float] = None,
    platoon_id: int = 1,
) -> ResilienceReport:
    """Resilience metrics for one trial (meaningful with a fault log).

    Each lead→follower flow contributes one :class:`WarningOutcome` for
    its initial packet (``nan`` delay when the flow never delivered);
    recovery latency pairs every fault injection in the trial's fault log
    with the platoon's next delivered packet.  The default ``deadline``
    is ``spacing / speed`` — the time for the follower to close the gap,
    the scale the paper's §III.E safety argument is built on.
    """
    if deadline is None:
        deadline = result.config.spacing / result.config.speed_mps
    platoon = result.platoon(platoon_id)
    outcomes = tuple(
        WarningOutcome(
            delay=(
                flow.delays.initial_delay
                if len(flow.delays)
                else float("nan")
            ),
            deadline=deadline,
        )
        for flow in platoon.flows
    )
    delivery_times = [
        sample.received_at for flow in platoon.flows for sample in flow.delays
    ]
    fault_times = [
        entry.time for entry in result.fault_log if entry.action == "inject"
    ]
    recovery = tuple(recovery_latencies(fault_times, delivery_times))
    return ResilienceReport(outcomes=outcomes, recovery=recovery)


@dataclass
class ComparisonResult:
    """Ratio-based comparison between two trials (same platoon)."""

    baseline: str
    other: str
    throughput_ratio: float
    delay_ratio: float
    baseline_throughput: float
    other_throughput: float
    baseline_delay: float
    other_delay: float


def _compare(a: TrialAnalysis, b: TrialAnalysis) -> ComparisonResult:
    return ComparisonResult(
        baseline=a.name,
        other=b.name,
        throughput_ratio=(
            b.throughput.average / a.throughput.average
            if a.throughput.average
            else float("inf")
        ),
        delay_ratio=(
            b.steady_state_delay / a.steady_state_delay
            if a.steady_state_delay
            else float("inf")
        ),
        baseline_throughput=a.throughput.average,
        other_throughput=b.throughput.average,
        baseline_delay=a.steady_state_delay,
        other_delay=b.steady_state_delay,
    )


def compare_packet_size(
    trial1: TrialResult, trial2: TrialResult
) -> ComparisonResult:
    """Trials 1 v 2: packet-size impact.

    Expected shape: throughput roughly halves (ratio ≈ payload ratio);
    one-way delay essentially unchanged (TDMA frame time dominates).
    """
    return _compare(analyze_trial(trial1), analyze_trial(trial2))


def compare_mac_type(
    trial1: TrialResult, trial3: TrialResult
) -> ComparisonResult:
    """Trials 1 v 3: MAC-type impact.

    Expected shape: 802.11 throughput significantly greater; 802.11
    one-way delay significantly smaller (no slot waiting).
    """
    return _compare(analyze_trial(trial1), analyze_trial(trial3))
