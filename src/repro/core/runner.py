"""Run trials and collect the paper's result bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.scenario import EblScenario, ScenarioGeometry
from repro.core.trials import TrialConfig
from repro.faults.injector import FaultLogEntry
from repro.faults.schedule import FaultSchedule
from repro.obs.runtime import Observability
from repro.sanitizer.violations import SanitizerReport
from repro.stats.confidence import ConfidenceResult, mean_confidence_interval
from repro.stats.delay import DelaySeries
from repro.stats.summary import SeriesSummary
from repro.stats.throughput import ThroughputSeries
from repro.trace.writer import Tracer


@dataclass
class FlowResult:
    """Per lead→follower flow: the delay data behind Figs. 5/6/8/9/11-14."""

    src: int
    dst: int
    #: Position of the receiver in the platoon (1 = middle, 2 = trailing).
    follower_index: int
    delays: DelaySeries
    delivered_segments: int
    duplicates: int

    def delay_summary(self) -> SeriesSummary:
        """avg/min/max one-way delay for this receiving vehicle."""
        return self.delays.summary()


@dataclass
class PlatoonResult:
    """Per-platoon results: delay per follower plus the throughput series."""

    platoon_id: int
    flows: list[FlowResult]
    throughput: ThroughputSeries
    communicating_from: float
    communicating_until: Optional[float]

    def flow_to(self, follower_index: int) -> FlowResult:
        """The flow to the given follower (1 = middle, 2 = trailing)."""
        for flow in self.flows:
            if flow.follower_index == follower_index:
                return flow
        raise KeyError(f"no flow to follower {follower_index}")

    def combined_delays(self) -> DelaySeries:
        """All follower delays merged in reception order (platoon plot)."""
        samples = sorted(
            (s for flow in self.flows for s in flow.delays),
            key=lambda s: s.received_at,
        )
        merged = [
            type(samples[0])(
                packet_id=i, sent_at=s.sent_at, received_at=s.received_at
            )
            for i, s in enumerate(samples)
        ] if samples else []
        return DelaySeries(merged)

    def throughput_confidence(self, level: float = 0.95) -> ConfidenceResult:
        """The paper's CI analysis over the active-phase throughput samples."""
        active = [
            s.mbps
            for s in self.throughput.samples
            if s.time >= self.communicating_from
            and (
                self.communicating_until is None
                or s.time <= self.communicating_until
            )
        ]
        return mean_confidence_interval(active, level=level)


@dataclass
class TrialResult:
    """Everything one trial produces."""

    config: TrialConfig
    platoon1: PlatoonResult
    platoon2: PlatoonResult
    tracer: Optional[Tracer]
    scenario: Optional[EblScenario] = field(repr=False, default=None)
    #: What the fault injector actually did, in time order (empty when the
    #: trial ran on the paper's clean network).
    fault_log: list[FaultLogEntry] = field(default_factory=list)
    #: Cross-layer telemetry (None unless the config enabled it).
    observability: Optional[Observability] = field(repr=False, default=None)
    #: Invariant-checking report (None unless the config enabled simsan).
    sanitizer_report: Optional[SanitizerReport] = None

    def platoon(self, platoon_id: int) -> PlatoonResult:
        """Platoon result by id (1 or 2)."""
        if platoon_id == 1:
            return self.platoon1
        if platoon_id == 2:
            return self.platoon2
        raise KeyError(f"no platoon {platoon_id}")

    def energy_by_node(self) -> dict[int, dict[str, float]]:
        """Per-node energy breakdown in joules (empty if not tracked)."""
        if self.scenario is None:
            return {}
        breakdown = {}
        for vehicle in self.scenario.vehicles:
            energy = vehicle.node.phy.energy
            if energy is not None:
                breakdown[vehicle.address] = energy.breakdown()
        return breakdown

    def energy_per_delivered_megabit(self) -> float:
        """Fleet joules consumed per delivered data megabit."""
        energies = self.energy_by_node()
        if not energies:
            return float("nan")
        total_joules = sum(sum(parts.values()) for parts in energies.values())
        delivered_bits = sum(
            flow.delivered_segments * self.config.packet_size * 8
            for platoon in (self.platoon1, self.platoon2)
            for flow in platoon.flows
        )
        if delivered_bits == 0:
            return float("inf")
        return total_joules / (delivered_bits / 1e6)


def run_trial(
    config: TrialConfig,
    geometry: Optional[ScenarioGeometry] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> TrialResult:
    """Build, run, and harvest one trial."""
    scenario = EblScenario(
        config, geometry=geometry, fault_schedule=fault_schedule
    )
    scenario.run()
    return harvest(scenario)


def harvest(scenario: EblScenario) -> TrialResult:
    """Collect results from a scenario that has already been run."""
    config = scenario.config

    def platoon_result(
        platoon_id: int, app, recorder, comm_from: float, comm_until
    ) -> PlatoonResult:
        flows = []
        for index, flow in enumerate(app.flows, start=1):
            flows.append(
                FlowResult(
                    src=flow.sender.address,
                    dst=flow.sink.address,
                    follower_index=index,
                    delays=DelaySeries.from_records(flow.sink.records),
                    delivered_segments=flow.sink.delivered_segments,
                    duplicates=flow.sink.duplicates,
                )
            )
        return PlatoonResult(
            platoon_id=platoon_id,
            flows=flows,
            throughput=recorder.series(),
            communicating_from=comm_from,
            communicating_until=comm_until,
        )

    platoon1 = platoon_result(
        1,
        scenario.app1,
        scenario.recorder1,
        scenario.brake_onset_time,
        None,
    )
    platoon2 = platoon_result(
        2,
        scenario.app2,
        scenario.recorder2,
        0.0,
        scenario.departure_time,
    )
    injector = scenario.fault_injector
    sanitizer_report = (
        scenario.sanitizer.finalize(scenario)
        if scenario.sanitizer is not None
        else None
    )
    return TrialResult(
        config=config,
        platoon1=platoon1,
        platoon2=platoon2,
        tracer=scenario.tracer,
        scenario=scenario,
        fault_log=list(injector.log) if injector is not None else [],
        observability=scenario.observability,
        sanitizer_report=sanitizer_report,
    )
