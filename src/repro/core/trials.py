"""Trial configurations (the paper's §III.A fixed and variable parameters).

Fixed across all trials: drop-tail priority interface queue, AODV
routing, 50 mph (22.4 m/s) vehicle speed, 25 m inter-vehicle spacing,
two platoons of three vehicles.  Variable: packet size and MAC type.

=======  ============  =========
Trial    Packet size   MAC type
=======  ============  =========
1        1,000 bytes   TDMA
2        500 bytes     TDMA
3        1,000 bytes   802.11
=======  ============  =========
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.faults.schedule import FaultPlan
from repro.mobility.kinematics import mph_to_mps
from repro.obs.config import ObservabilityConfig
from repro.sanitizer.config import SanitizerConfig

#: Valid MAC selections.
MAC_TYPES = ("tdma", "802.11", "csma", "edca")
#: Valid interface-queue selections.
QUEUE_TYPES = ("droptail", "pri", "red")
#: Valid routing selections.
ROUTING_TYPES = ("aodv", "dsdv", "static", "flooding")


@dataclass
class TrialConfig:
    """Everything needed to build and run one EBL trial."""

    name: str = "trial"
    #: TCP segment payload, bytes (the paper's first variable parameter).
    packet_size: int = 1000
    #: MAC type (the paper's second variable parameter).
    mac_type: str = "tdma"
    #: Interface queue; the paper fixes ``Queue/DropTail/PriQueue``.
    queue_type: str = "pri"
    #: Routing protocol; the paper fixes AODV.
    routing: str = "aodv"
    #: Vehicle speed (the paper's 50 mph).
    speed_mps: float = mph_to_mps(50.0)
    #: Inter-vehicle spacing within a platoon, metres.
    spacing: float = 25.0
    #: Vehicles per platoon.
    platoon_size: int = 3
    #: Total simulated time, seconds.
    duration: float = 60.0
    #: Throughput sampling period (the Tcl recorder's ``$time``).
    throughput_interval: float = 0.5
    #: RNG seed (backoff draws etc.).
    seed: int = 1
    #: TCP sender window, segments (ns-2 ``window_``).
    tcp_window: int = 20
    #: TCP congestion-control variant: "reno", "tahoe", or "newreno".
    tcp_variant: str = "reno"
    #: Interface-queue limit, packets.
    queue_limit: int = 50
    #: TDMA slots per frame.  The paper never publishes its TDMA frame
    #: configuration; 16 slots of 1,500 bytes (slot 6.3 ms, frame 101 ms)
    #: reproduces its reconstructed initial-packet delay of ≈0.24 s and the
    #: ">20% of the separating distance" safety finding.  ``None`` assigns
    #: one slot per node; the X3 ablation bench sweeps this parameter.
    tdma_num_slots: Optional[int] = 16
    #: Bytes a TDMA slot is sized for (ns-2 default: one MTU).
    tdma_slot_packet_len: int = 1500
    #: 802.11 RTS/CTS threshold, bytes (3000 = effectively off).
    rts_threshold: int = 3000
    #: Radio bit rate, bit/s (ns-2 WaveLAN profile).
    bitrate: float = 2e6
    #: CBR interval for the EBL stream; None = saturated FTP-style flow.
    cbr_interval: Optional[float] = None
    #: Assumed deceleration when computing brake onset, m/s².
    deceleration: float = 4.0
    #: Collect a full packet trace (disable for the fastest runs).
    enable_trace: bool = True
    #: Random per-frame loss rate injected at every receiver (0 = clean
    #: channel, the paper's setting).
    error_rate: float = 0.0
    #: When True, losses arrive in Gilbert-Elliot bursts with the same
    #: long-run rate instead of independently.
    error_bursts: bool = False
    #: Attach an energy model to every radio (WaveLAN power profile).
    track_energy: bool = True
    #: Run ARP below the routing layer (ns-2 did; off by default here —
    #: the first packet per neighbour then pays a request/reply RTT,
    #: visibly inflating the initial-warning delay).
    use_arp: bool = False
    #: Stochastic fault plan; None keeps the paper's failure-free network.
    #: The concrete :class:`~repro.faults.schedule.FaultSchedule` derives
    #: from this plan plus ``seed`` and ``duration``.
    fault_plan: Optional[FaultPlan] = None
    #: Cross-layer observability (metrics, packet journeys, heartbeats);
    #: None disables it entirely — the no-op fast path.  Enabling it is
    #: guaranteed not to perturb results (see docs/OBSERVABILITY.md).
    observability: Optional[ObservabilityConfig] = None
    #: Runtime invariant checking (simsan); None disables it entirely —
    #: the same no-op fast path as observability.  Enabling it is
    #: guaranteed not to perturb results (see docs/ROBUSTNESS.md).
    sanitize: Optional[SanitizerConfig] = None

    def __post_init__(self) -> None:
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.mac_type not in MAC_TYPES:
            raise ValueError(
                f"unknown mac_type {self.mac_type!r}; expected one of {MAC_TYPES}"
            )
        if self.queue_type not in QUEUE_TYPES:
            raise ValueError(
                f"unknown queue_type {self.queue_type!r}; "
                f"expected one of {QUEUE_TYPES}"
            )
        if self.routing not in ROUTING_TYPES:
            raise ValueError(
                f"unknown routing {self.routing!r}; expected one of {ROUTING_TYPES}"
            )
        if self.tcp_variant not in ("reno", "tahoe", "newreno"):
            raise ValueError(
                f"unknown tcp_variant {self.tcp_variant!r}; "
                "expected reno, tahoe, or newreno"
            )
        if self.platoon_size < 2:
            raise ValueError("platoon_size must be at least 2 (lead + follower)")
        if self.speed_mps <= 0:
            raise ValueError("speed_mps must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.throughput_interval <= 0:
            raise ValueError("throughput_interval must be positive")
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.tcp_window <= 0:
            raise ValueError("tcp_window must be positive")
        if not 0 <= self.error_rate < 1:
            raise ValueError("error_rate must be in [0, 1)")

    def with_overrides(self, **kwargs) -> "TrialConfig":
        """A copy of this config with fields replaced."""
        return replace(self, **kwargs)

    @property
    def total_vehicles(self) -> int:
        """Vehicles across both platoons."""
        return 2 * self.platoon_size


#: Trial 1 — the baseline: 1,000-byte packets over TDMA.
TRIAL_1 = TrialConfig(name="trial1", packet_size=1000, mac_type="tdma")

#: Trial 2 — packet-size comparison: 500-byte packets over TDMA.
TRIAL_2 = TrialConfig(name="trial2", packet_size=500, mac_type="tdma")

#: Trial 3 — MAC comparison: 1,000-byte packets over 802.11.
TRIAL_3 = TrialConfig(name="trial3", packet_size=1000, mac_type="802.11")
