"""The Extended Brake Lights (EBL) study: scenario, trials, and analysis.

This package is the paper's contribution layer.  It builds the
two-platoon intersection scenario on top of the network substrate,
defines the three trials (packet size × MAC type), runs them, and
reproduces the paper's delay/throughput/confidence/safety analyses.
"""

from repro.core.attacks import JammerApp, fhss_effective_loss
from repro.core.analysis import (
    TrialAnalysis,
    analyze_trial,
    compare_mac_type,
    compare_packet_size,
)
from repro.core.ebl import EblApplication, EblFlow, EblWarningApp
from repro.core.runner import FlowResult, PlatoonResult, TrialResult, run_trial
from repro.core.safety import SafetyAssessment, assess_safety
from repro.core.scenario import EblScenario, ScenarioGeometry
from repro.core.trials import TRIAL_1, TRIAL_2, TRIAL_3, TrialConfig
from repro.core.vehicle import Vehicle

__all__ = [
    "EblApplication",
    "EblFlow",
    "EblScenario",
    "EblWarningApp",
    "FlowResult",
    "JammerApp",
    "PlatoonResult",
    "fhss_effective_loss",
    "SafetyAssessment",
    "ScenarioGeometry",
    "TRIAL_1",
    "TRIAL_2",
    "TRIAL_3",
    "TrialAnalysis",
    "TrialConfig",
    "TrialResult",
    "Vehicle",
    "analyze_trial",
    "assess_safety",
    "compare_mac_type",
    "compare_packet_size",
    "run_trial",
]
