"""The two-platoon intersection scenario (paper Figs. 1-2).

Platoon 1 (vehicles 0-2) approaches the intersection from the south,
moving north at the configured speed; platoon 2 (vehicles 3-5) sits
stopped at the intersection heading east.

Timeline, exactly as the paper describes:

1. At t=0 platoon 1 is moving vertically; platoon 2 is stopped at the
   intersection *and communicating* (its brakes are on).
2. Platoon 1 brakes on approach and stops at the intersection; from brake
   onset it communicates.
3. When platoon 1 arrives, platoon 2 releases its brakes, departs
   horizontally, and *stops communicating*.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Optional

from repro.core.ebl import EblApplication
from repro.core.seeding import derive_rng, error_rng, mac_rng
from repro.core.trials import TrialConfig
from repro.core.vehicle import Vehicle
from repro.des.core import Environment
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.mac.csma import CsmaMac
from repro.mac.dcf import Dcf80211Mac, DcfParams
from repro.mac.edca import EdcaMac, EdcaParams
from repro.mac.tdma import TdmaMac, TdmaParams
from repro.mobility.kinematics import braking_distance
from repro.mobility.platoon import Platoon, PlatoonSpec
from repro.net.channel import WirelessChannel
from repro.net.node import Node
from repro.net.queues import DropTailQueue, PriQueue, REDQueue
from repro.obs.runtime import Observability
from repro.phy.energy import EnergyModel
from repro.phy.error_models import GilbertElliotErrorModel, UniformErrorModel
from repro.phy.radio import RadioParams
from repro.routing.aodv import Aodv, AodvParams
from repro.routing.dsdv import Dsdv
from repro.routing.flooding import Flooding
from repro.routing.static_routing import StaticRouting
from repro.sanitizer.runtime import Sanitizer
from repro.stats.recorder import ThroughputRecorder
from repro.trace.writer import Tracer


@dataclass
class ScenarioGeometry:
    """Where everything sits and how far platoon 1 has to travel."""

    #: Stop-line offset from the intersection centre, metres.
    stop_offset: float = 15.0
    #: Distance platoon 1's lead starts from its stop line, metres.
    approach_distance: float = 250.0
    #: How far platoon 2 drives when it departs, metres.
    departure_distance: float = 500.0


class EblScenario:
    """Builds and owns the complete simulation for one trial."""

    def __init__(
        self,
        config: TrialConfig,
        geometry: Optional[ScenarioGeometry] = None,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self.config = config
        self.geometry = geometry or ScenarioGeometry()
        # The sanitizer's kernel checks turn on the event loop's strict
        # (past-firing) mode; the label lands in SchedulingError messages.
        self.env = Environment(
            strict=config.sanitize is not None and config.sanitize.kernel
        )
        self.env.label = config.name
        self.tracer = Tracer() if config.enable_trace else None
        # Observability is activated for the span of stack construction
        # only: components bind their instruments as they are built (the
        # channel below is instrumented too, hence activation comes
        # first), and the ``finally`` guarantees no registry leaks into a
        # later scenario built in the same process.  The sanitizer follows
        # the identical lifecycle.
        self.observability = (
            Observability(config.observability, self.env)
            if config.observability is not None
            else None
        )
        self.sanitizer = (
            Sanitizer(config.sanitize, self.env, scenario_name=config.name)
            if config.sanitize is not None
            else None
        )
        if self.observability is not None:
            self.observability.activate()
        if self.sanitizer is not None:
            self.sanitizer.activate()
        try:
            self.channel = WirelessChannel(self.env)
            # Scenario-level stream; components below derive their own named
            # streams so no two instances ever share a sequence (see
            # repro.core.seeding for the convention).
            self._rng = derive_rng(config.seed, "scenario")

            self._build_platoons()
            self._build_nodes()
            self._build_applications()
            self._schedule_movements()
            self._build_faults(fault_schedule)
        finally:
            if self.sanitizer is not None:
                self.sanitizer.deactivate()
            if self.observability is not None:
                self.observability.deactivate()

    # -- construction ---------------------------------------------------------

    def _build_platoons(self) -> None:
        geo = self.geometry
        size = self.config.platoon_size
        spacing = self.config.spacing
        # Platoon 1: heading north, approaching the intersection.
        self.platoon1 = Platoon(
            PlatoonSpec(
                size=size,
                spacing=spacing,
                lead_position=(0.0, -geo.stop_offset - geo.approach_distance),
                heading=(0.0, 1.0),
            )
        )
        # Platoon 2: heading east, stopped at the intersection.
        self.platoon2 = Platoon(
            PlatoonSpec(
                size=size,
                spacing=spacing,
                lead_position=(-geo.stop_offset, 0.0),
                heading=(1.0, 0.0),
            )
        )

    def _mac_factory(self):
        config = self.config
        if config.mac_type == "tdma":
            num_slots = config.tdma_num_slots or config.total_vehicles

            def factory(env, address, phy, ifq):
                return TdmaMac(
                    env,
                    address,
                    phy,
                    ifq,
                    TdmaParams(
                        num_slots=num_slots,
                        slot_packet_len=config.tdma_slot_packet_len,
                    ),
                )

        elif config.mac_type == "802.11":

            def factory(env, address, phy, ifq):
                return Dcf80211Mac(
                    env,
                    address,
                    phy,
                    ifq,
                    DcfParams(rts_threshold=config.rts_threshold),
                    rng=mac_rng(config.seed, address),
                )

        elif config.mac_type == "edca":

            def factory(env, address, phy, ifq):
                return EdcaMac(
                    env,
                    address,
                    phy,
                    ifq,
                    params=EdcaParams(rts_threshold=config.rts_threshold),
                    rng=mac_rng(config.seed, address),
                )

        else:  # csma

            def factory(env, address, phy, ifq):
                return CsmaMac(
                    env,
                    address,
                    phy,
                    ifq,
                    rng=mac_rng(config.seed, address),
                )

        return factory

    def _queue_factory(self):
        config = self.config
        if config.queue_type == "pri":
            return lambda env: PriQueue(env, limit=config.queue_limit)
        if config.queue_type == "red":
            # Nodes are built in address order, so the construction counter
            # gives each RED queue its own deterministic stream (the class
            # default would hand every instance an identical Random(0)).
            instance = count()

            def red_factory(env):
                return REDQueue(
                    env,
                    limit=config.queue_limit,
                    rng=derive_rng(config.seed, "net.redqueue", next(instance)),
                )

            return red_factory
        return lambda env: DropTailQueue(env, limit=config.queue_limit)

    def _build_routing(self, node: Node) -> None:
        routing = self.config.routing
        if routing == "aodv":
            Aodv(node, AodvParams())
        elif routing == "dsdv":
            Dsdv(node)
        elif routing == "flooding":
            Flooding(node)
        else:
            StaticRouting(node)

    def _build_nodes(self) -> None:
        config = self.config
        mac_factory = self._mac_factory()
        queue_factory = self._queue_factory()
        radio = RadioParams(bitrate=config.bitrate)
        self.vehicles: list[Vehicle] = []
        mobilities = self.platoon1.mobilities + self.platoon2.mobilities
        for address, mobility in enumerate(mobilities):
            node = Node(
                self.env,
                address,
                mobility,
                self.channel,
                mac_factory,
                queue_factory=queue_factory,
                radio_params=RadioParams(bitrate=config.bitrate),
                tracer=self.tracer,
                use_arp=config.use_arp,
            )
            self._build_routing(node)
            if config.error_rate > 0:
                node.phy.error_model = self._make_error_model(address)
            if config.track_energy:
                node.phy.energy = EnergyModel(self.env)
            self.vehicles.append(Vehicle(self.env, node, mobility))
        del radio

    def _make_error_model(self, address: int):
        config = self.config
        rng = error_rng(config.seed, address)
        if config.error_bursts:
            # Pick a bad-state dwell giving the configured long-run rate:
            # with good_loss=0, bad_loss=1: rate = p_gb / (p_gb + p_bg).
            p_bg = 0.25
            p_gb = config.error_rate * p_bg / (1.0 - config.error_rate)
            return GilbertElliotErrorModel(
                p_good_to_bad=p_gb,
                p_bad_to_good=p_bg,
                good_loss=0.0,
                bad_loss=1.0,
                rng=rng,
            )
        return UniformErrorModel(rate=config.error_rate, rng=rng)

    def _build_applications(self) -> None:
        config = self.config
        size = config.platoon_size
        self.platoon1_vehicles = self.vehicles[:size]
        self.platoon2_vehicles = self.vehicles[size:]
        self.app1 = EblApplication(
            lead=self.platoon1_vehicles[0],
            followers=self.platoon1_vehicles[1:],
            packet_size=config.packet_size,
            tcp_window=config.tcp_window,
            cbr_interval=config.cbr_interval,
            tcp_variant=config.tcp_variant,
        )
        self.app2 = EblApplication(
            lead=self.platoon2_vehicles[0],
            followers=self.platoon2_vehicles[1:],
            packet_size=config.packet_size,
            tcp_window=config.tcp_window,
            cbr_interval=config.cbr_interval,
            tcp_variant=config.tcp_variant,
        )
        self.recorder1 = ThroughputRecorder.for_sinks(
            self.env, self.app1.sinks, config.throughput_interval
        )
        self.recorder2 = ThroughputRecorder.for_sinks(
            self.env, self.app2.sinks, config.throughput_interval
        )

    def _build_faults(self, fault_schedule: Optional[FaultSchedule]) -> None:
        """Attach the fault injector (explicit schedule wins over the plan)."""
        config = self.config
        if fault_schedule is None and config.fault_plan is not None:
            fault_schedule = FaultSchedule.from_plan(
                config.fault_plan,
                config.seed,
                config.duration,
                [vehicle.address for vehicle in self.vehicles],
            )
        self.fault_schedule = fault_schedule
        self.fault_injector = (
            FaultInjector(self, fault_schedule)
            if fault_schedule is not None
            else None
        )

    # -- timeline ------------------------------------------------------------------

    @property
    def arrival_time(self) -> float:
        """When platoon 1's lead reaches its stop line."""
        return self.geometry.approach_distance / self.config.speed_mps

    @property
    def brake_onset_time(self) -> float:
        """When platoon 1's lead applies the brakes on approach.

        The lead begins braking one braking-distance before the stop line
        (computed from the configured deceleration); the waypoint mobility
        itself moves at constant speed, as ns-2's ``setdest`` does.
        """
        distance = braking_distance(
            self.config.speed_mps, self.config.deceleration
        )
        distance = min(distance, self.geometry.approach_distance)
        return (self.geometry.approach_distance - distance) / self.config.speed_mps

    @property
    def departure_time(self) -> float:
        """When platoon 2 releases its brakes and departs."""
        return self.arrival_time

    def _schedule_movements(self) -> None:
        config = self.config
        geo = self.geometry
        # Platoon 1 drives to the stop line starting at t=0.
        self.platoon1.advance(0.0, geo.approach_distance, config.speed_mps)
        # Platoon 1 brakes on approach and stays stopped (open episode).
        self.platoon1_vehicles[0].schedule_braking(self.brake_onset_time, None)
        # Platoon 2 is braking/stopped from the start, releases at departure.
        self.platoon2_vehicles[0].schedule_braking(0.0, self.departure_time)
        self.platoon2.advance(
            self.departure_time, geo.departure_distance, config.speed_mps
        )

    # -- execution --------------------------------------------------------------------

    def start(self) -> None:
        """Start every node, both throughput recorders, and any faults."""
        for vehicle in self.vehicles:
            vehicle.node.start()
        self.recorder1.start()
        self.recorder2.start()
        if self.fault_injector is not None:
            self.fault_injector.start()
        if self.observability is not None:
            self.observability.start()

    def run(self) -> None:
        """Start and run to the configured duration."""
        self.start()
        self.env.run(until=self.config.duration)
